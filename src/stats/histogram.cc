#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/logging.h"
#include "common/table_printer.h"

namespace joinest {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

namespace {

// Counts rows and distinct values of `sorted` in [begin, end).
HistogramBucket MakeBucket(const std::vector<double>& sorted, size_t begin,
                           size_t end) {
  HistogramBucket bucket;
  bucket.lo = sorted[begin];
  bucket.hi = sorted[end - 1];
  bucket.rows = static_cast<double>(end - begin);
  double distinct = 1;
  for (size_t i = begin + 1; i < end; ++i) {
    if (sorted[i] != sorted[i - 1]) ++distinct;
  }
  bucket.distinct = distinct;
  return bucket;
}

}  // namespace

Histogram::Histogram(Kind kind, std::vector<HistogramBucket> buckets)
    : kind_(kind), buckets_(std::move(buckets)) {
  for (const HistogramBucket& b : buckets_) {
    // Note: distinct <= rows is NOT asserted — Slice() keeps a floor of one
    // distinct value in fractional buckets whose scaled row count drops
    // below one.
    JOINEST_DCHECK_LE(b.lo, b.hi) << "inverted bucket";
    JOINEST_CHECK_CARDINALITY(b.rows) << "bucket rows";
    JOINEST_CHECK_CARDINALITY(b.distinct) << "bucket distinct";
    total_rows_ += b.rows;
  }
}

Histogram Histogram::BuildEquiWidth(const std::vector<double>& data,
                                    int num_buckets) {
  JOINEST_CHECK_GT(num_buckets, 0);
  if (data.empty()) return Histogram(Kind::kEquiWidth, {});
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const double min = sorted.front();
  const double max = sorted.back();
  if (min == max) {
    return Histogram(Kind::kEquiWidth,
                     {MakeBucket(sorted, 0, sorted.size())});
  }
  const double width = (max - min) / num_buckets;
  std::vector<HistogramBucket> buckets;
  size_t begin = 0;
  for (int b = 0; b < num_buckets && begin < sorted.size(); ++b) {
    // Rows with value < boundary belong to bucket b; the final bucket takes
    // everything left (including max itself).
    const double boundary = min + width * (b + 1);
    size_t end;
    if (b == num_buckets - 1) {
      end = sorted.size();
    } else {
      end = std::lower_bound(sorted.begin() + begin, sorted.end(), boundary) -
            sorted.begin();
    }
    if (end > begin) {
      buckets.push_back(MakeBucket(sorted, begin, end));
      begin = end;
    }
  }
  return Histogram(Kind::kEquiWidth, std::move(buckets));
}

Histogram Histogram::BuildEquiDepth(const std::vector<double>& data,
                                    int num_buckets) {
  JOINEST_CHECK_GT(num_buckets, 0);
  if (data.empty()) return Histogram(Kind::kEquiDepth, {});
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  std::vector<HistogramBucket> buckets;
  size_t begin = 0;
  for (int b = 0; b < num_buckets && begin < n; ++b) {
    size_t end = (b == num_buckets - 1)
                     ? n
                     : (n * static_cast<size_t>(b + 1)) / num_buckets;
    if (end <= begin) continue;
    // Never split a run of equal values across buckets: extend to cover the
    // full run so bucket boundaries are true quantile values.
    while (end < n && sorted[end] == sorted[end - 1]) ++end;
    buckets.push_back(MakeBucket(sorted, begin, end));
    begin = end;
  }
  return Histogram(Kind::kEquiDepth, std::move(buckets));
}

Histogram Histogram::FromBuckets(Kind kind,
                                 std::vector<HistogramBucket> buckets) {
  for (size_t i = 0; i < buckets.size(); ++i) {
    JOINEST_CHECK_LE(buckets[i].lo, buckets[i].hi);
    if (i > 0) {
      JOINEST_CHECK_GT(buckets[i].lo, buckets[i - 1].hi)
          << "buckets must be sorted and disjoint";
    }
  }
  return Histogram(kind, std::move(buckets));
}

Histogram Histogram::BuildEndBiased(const std::vector<double>& data,
                                    int num_singletons, int num_buckets) {
  JOINEST_CHECK_GT(num_singletons, 0);
  JOINEST_CHECK_GT(num_buckets, 0);
  if (data.empty()) return Histogram(Kind::kEndBiased, {});
  // Frequency census.
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  struct ValueCount {
    double value;
    double count;
  };
  std::vector<ValueCount> census;
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    census.push_back({sorted[i], static_cast<double>(j - i)});
    i = j;
  }
  // Pick the heaviest values as singletons.
  std::vector<ValueCount> by_count = census;
  std::sort(by_count.begin(), by_count.end(),
            [](const ValueCount& a, const ValueCount& b) {
              return a.count != b.count ? a.count > b.count
                                        : a.value < b.value;
            });
  const size_t k =
      std::min<size_t>(num_singletons, by_count.size());
  std::vector<double> singleton_values;
  for (size_t i = 0; i < k; ++i) singleton_values.push_back(by_count[i].value);
  std::sort(singleton_values.begin(), singleton_values.end());
  auto is_singleton = [&](double v) {
    return std::binary_search(singleton_values.begin(),
                              singleton_values.end(), v);
  };

  std::vector<HistogramBucket> buckets;
  for (double v : singleton_values) {
    HistogramBucket bucket;
    bucket.lo = bucket.hi = v;
    bucket.distinct = 1;
    for (const ValueCount& vc : census) {
      if (vc.value == v) {
        bucket.rows = vc.count;
        break;
      }
    }
    buckets.push_back(bucket);
  }

  // Equi-depth the tail within the segments between singleton values, so
  // buckets stay disjoint. Bucket budget is spread proportionally to
  // segment row counts.
  std::vector<double> tail;
  for (double v : sorted) {
    if (!is_singleton(v)) tail.push_back(v);
  }
  if (!tail.empty()) {
    // Segment boundaries: indices in `tail` where a singleton value would
    // sort between neighbours.
    std::vector<std::pair<size_t, size_t>> segments;
    size_t begin = 0;
    for (double s : singleton_values) {
      const size_t end =
          std::lower_bound(tail.begin() + begin, tail.end(), s) -
          tail.begin();
      if (end > begin) segments.emplace_back(begin, end);
      begin = end;
    }
    if (begin < tail.size()) segments.emplace_back(begin, tail.size());
    for (const auto& [seg_begin, seg_end] : segments) {
      const double fraction = static_cast<double>(seg_end - seg_begin) /
                              static_cast<double>(tail.size());
      const int budget = std::max(
          1, static_cast<int>(std::lround(fraction * num_buckets)));
      const std::vector<double> segment(tail.begin() + seg_begin,
                                        tail.begin() + seg_end);
      const Histogram inner = BuildEquiDepth(segment, budget);
      for (const HistogramBucket& b : inner.buckets()) buckets.push_back(b);
    }
  }
  std::sort(buckets.begin(), buckets.end(),
            [](const HistogramBucket& a, const HistogramBucket& b) {
              return a.lo < b.lo;
            });
  return Histogram(Kind::kEndBiased, std::move(buckets));
}

double Histogram::FractionEq(double value) const {
  if (total_rows_ == 0) return 0;
  for (const HistogramBucket& b : buckets_) {
    if (value < b.lo) break;
    if (value <= b.hi) {
      // Per-bucket uniformity over the bucket's distinct values.
      return (b.rows / total_rows_) / std::max(b.distinct, 1.0);
    }
  }
  return 0;
}

double Histogram::FractionBelow(double value) const {
  if (total_rows_ == 0) return 0;
  double rows_below = 0;
  for (const HistogramBucket& b : buckets_) {
    if (value > b.hi) {
      rows_below += b.rows;
      continue;
    }
    if (value >= b.lo) {
      // Linear interpolation inside the bucket. A zero-width bucket holds a
      // single value run; nothing in it is strictly below `value == lo`.
      const double span = b.hi - b.lo;
      if (span > 0) rows_below += b.rows * (value - b.lo) / span;
    }
    break;
  }
  return std::min(1.0, rows_below / total_rows_);
}

double Histogram::Selectivity(CompareOp op, double value) const {
  if (total_rows_ == 0) return 0;
  const double eq = FractionEq(value);
  // Interpolation at the top of a bucket can claim the whole bucket as
  // "strictly below"; cap so that below + eq never exceeds 1 and the six
  // operators stay mutually consistent.
  const double below = std::min(FractionBelow(value), 1.0 - eq);
  JOINEST_CHECK_SELECTIVITY(eq) << "FractionEq(" << value << ")";
  JOINEST_CHECK_SELECTIVITY(below) << "FractionBelow(" << value << ")";
  double result = 0;
  switch (op) {
    case CompareOp::kEq:
      result = eq;
      break;
    case CompareOp::kNe:
      result = 1.0 - eq;
      break;
    case CompareOp::kLt:
      result = below;
      break;
    case CompareOp::kLe:
      result = below + eq;
      break;
    case CompareOp::kGt:
      result = 1.0 - below - eq;
      break;
    case CompareOp::kGe:
      result = 1.0 - below;
      break;
  }
  // Absorb FP dust from the 1-x subtractions; anything beyond dust is a
  // genuine contract violation.
  if (result < 0.0 && result > -1e-12) result = 0.0;
  if (result > 1.0 && result < 1.0 + 1e-12) result = 1.0;
  JOINEST_CHECK_SELECTIVITY(result)
      << "Histogram::Selectivity(" << CompareOpSymbol(op) << ", " << value
      << ")";
  return result;
}

double Histogram::RangeSelectivity(double lo, bool lo_inclusive, double hi,
                                   bool hi_inclusive) const {
  if (total_rows_ == 0) return 0;
  if (lo > hi) return 0;
  const double below_hi =
      Selectivity(hi_inclusive ? CompareOp::kLe : CompareOp::kLt, hi);
  const double below_lo =
      Selectivity(lo_inclusive ? CompareOp::kLt : CompareOp::kLe, lo);
  const double result = std::max(0.0, below_hi - below_lo);
  JOINEST_CHECK_SELECTIVITY(result)
      << "Histogram::RangeSelectivity(" << lo << ", " << hi << ")";
  return result;
}

Histogram Histogram::Slice(double lo, double hi) const {
  std::vector<HistogramBucket> clipped;
  for (const HistogramBucket& b : buckets_) {
    const double new_lo = std::max(b.lo, lo);
    const double new_hi = std::min(b.hi, hi);
    if (new_lo > new_hi) continue;
    const double span = b.hi - b.lo;
    const double fraction = span == 0 ? 1.0 : (new_hi - new_lo) / span;
    if (fraction <= 0) continue;
    HistogramBucket piece;
    piece.lo = new_lo;
    piece.hi = new_hi;
    piece.rows = b.rows * fraction;
    piece.distinct = std::max(b.distinct * fraction, 1.0);
    clipped.push_back(piece);
  }
  return Histogram(kind_, std::move(clipped));
}

double HistogramJoinSelectivity(const Histogram& left,
                                const Histogram& right) {
  if (left.total_rows_ <= 0 || right.total_rows_ <= 0) return 0;
  double matches = 0;
  // Buckets within a histogram are disjoint, so every (bl, br) overlap is a
  // distinct value segment; a sorted two-pointer sweep visits them all.
  size_t i = 0, j = 0;
  const auto& lbs = left.buckets_;
  const auto& rbs = right.buckets_;
  while (i < lbs.size() && j < rbs.size()) {
    const HistogramBucket& bl = lbs[i];
    const HistogramBucket& br = rbs[j];
    const double lo = std::max(bl.lo, br.lo);
    const double hi = std::min(bl.hi, br.hi);
    if (lo <= hi) {
      const double span_l = bl.hi - bl.lo;
      const double span_r = br.hi - br.lo;
      if (span_l == 0 && span_r == 0) {
        // Two point buckets at the same value.
        matches += bl.rows * br.rows;
      } else if (span_l == 0) {
        // Hot key on the left inside a range bucket on the right: it meets
        // one value's share of the right bucket.
        matches += bl.rows * br.rows / std::max(br.distinct, 1.0);
      } else if (span_r == 0) {
        matches += br.rows * bl.rows / std::max(bl.distinct, 1.0);
      } else {
        // Continuous overlap: Equation 1 restricted to the segment.
        const double frac_l = (hi - lo) / span_l;
        const double frac_r = (hi - lo) / span_r;
        const double rows_l = bl.rows * frac_l;
        const double rows_r = br.rows * frac_r;
        const double d_l = std::max(bl.distinct * frac_l, 1e-9);
        const double d_r = std::max(br.distinct * frac_r, 1e-9);
        matches += std::min(d_l, d_r) * (rows_l / d_l) * (rows_r / d_r);
      }
    }
    // Advance whichever bucket ends first.
    if (bl.hi < br.hi) {
      ++i;
    } else if (br.hi < bl.hi) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  // The per-segment containment assumption can overshoot the true match
  // count but never below zero; the clamp is the documented contract.
  JOINEST_CHECK_CARDINALITY(matches) << "HistogramJoinSelectivity matches";
  const double selectivity =
      matches / (left.total_rows_ * right.total_rows_);
  const double result = std::clamp(selectivity, 0.0, 1.0);
  JOINEST_CHECK_SELECTIVITY(result) << "HistogramJoinSelectivity";
  return result;
}

std::string Histogram::ToString() const {
  std::ostringstream oss;
  const char* kind_name = kind_ == Kind::kEquiWidth   ? "equi-width"
                          : kind_ == Kind::kEquiDepth ? "equi-depth"
                                                      : "end-biased";
  oss << kind_name << " ["
      << buckets_.size() << " buckets, " << FormatNumber(total_rows_)
      << " rows]";
  for (const HistogramBucket& b : buckets_) {
    oss << " {[" << FormatNumber(b.lo) << "," << FormatNumber(b.hi)
        << "] rows=" << FormatNumber(b.rows)
        << " d=" << FormatNumber(b.distinct) << "}";
  }
  return oss.str();
}

}  // namespace joinest
