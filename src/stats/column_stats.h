// Catalog statistics: the two statistics the paper identifies as central
// (§2) — table cardinality ||R|| and column cardinality d_x — plus optional
// min/max and a histogram for distribution-aware local selectivities.

#ifndef JOINEST_STATS_COLUMN_STATS_H_
#define JOINEST_STATS_COLUMN_STATS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stats/histogram.h"

namespace joinest {

// How a statistic was collected. Exact statistics come from full scans with
// exact hash sets; sampled statistics from a Bernoulli row sample (GEE
// distinct extrapolation); sketch statistics from the streaming sketches in
// src/sketch/ (HLL distinct counts, CMS heavy hitters, reservoir tails).
enum class StatsSource {
  kExact = 0,
  kSampled,
  kSketch,
};

const char* StatsSourceName(StatsSource source);

struct ColumnStats {
  // Column cardinality d_x: number of distinct values.
  double distinct_count = 0;
  // Value range, for numeric columns.
  std::optional<double> min;
  std::optional<double> max;
  // Optional distribution statistics (numeric columns only). Shared so
  // TableStats stays copyable.
  std::shared_ptr<const Histogram> histogram;
  // A-priori relative standard error of distinct_count under the collection
  // scheme (e.g. HLL's 1.04/√(2^p)). Unset for exact statistics.
  std::optional<double> distinct_relative_error;

  std::string ToString() const;
};

struct TableStats {
  // Table cardinality ||R||.
  double row_count = 0;
  // One entry per schema column.
  std::vector<ColumnStats> columns;
  // Collection scheme these statistics came from.
  StatsSource source = StatsSource::kExact;

  const ColumnStats& column(int i) const;
  std::string ToString() const;
};

}  // namespace joinest

#endif  // JOINEST_STATS_COLUMN_STATS_H_
