// Catalog statistics: the two statistics the paper identifies as central
// (§2) — table cardinality ||R|| and column cardinality d_x — plus optional
// min/max and a histogram for distribution-aware local selectivities.

#ifndef JOINEST_STATS_COLUMN_STATS_H_
#define JOINEST_STATS_COLUMN_STATS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stats/histogram.h"

namespace joinest {

struct ColumnStats {
  // Column cardinality d_x: number of distinct values.
  double distinct_count = 0;
  // Value range, for numeric columns.
  std::optional<double> min;
  std::optional<double> max;
  // Optional distribution statistics (numeric columns only). Shared so
  // TableStats stays copyable.
  std::shared_ptr<const Histogram> histogram;

  std::string ToString() const;
};

struct TableStats {
  // Table cardinality ||R||.
  double row_count = 0;
  // One entry per schema column.
  std::vector<ColumnStats> columns;

  const ColumnStats& column(int i) const;
  std::string ToString() const;
};

}  // namespace joinest

#endif  // JOINEST_STATS_COLUMN_STATS_H_
