// Immutable catalog snapshots and the builder that produces them.
//
// The estimation service never mutates a catalog in place. Instead, every
// mutation (load a table, ANALYZE, replace statistics) builds a NEW catalog
// — sharing the previous snapshot's table payloads, which are
// shared_ptr<const Table> — seals it, wraps it in a CatalogSnapshot and
// atomically publishes that. Readers that grabbed the previous snapshot
// keep a shared_ptr to it and continue unperturbed; the last reference
// frees it. This is the Glue-style "compute per-table artifacts once,
// reuse across queries" lifecycle: a snapshot version is the reuse unit.
//
// Invariants:
//   * A CatalogSnapshot's catalog is sealed (Catalog::Seal) before the
//     snapshot is constructed — enforced with JOINEST_DCHECK. Every
//     mutating Catalog entry point DCHECK-fails on a sealed catalog, so
//     "ANALYZE under a live reader" cannot be written by construction.
//   * Versions are assigned by the publisher (Database) and strictly
//     increase; version 0 is the empty bootstrap snapshot.
//   * Table ids are stable across derived snapshots: the builder preserves
//     registration order, so a QuerySpec resolved against version v remains
//     valid against any later version (new tables only append). A spec is
//     nonetheless always *executed* against the snapshot it was prepared
//     with, pinning statistics and data consistently.

#ifndef JOINEST_SERVICE_SNAPSHOT_H_
#define JOINEST_SERVICE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/analyze.h"
#include "storage/catalog.h"

namespace joinest {

class SnapshotBuilder;

class CatalogSnapshot {
 public:
  // The sealed, deeply immutable catalog (tables + statistics).
  const Catalog& catalog() const { return catalog_; }
  // Publisher-assigned, strictly increasing.
  uint64_t version() const { return version_; }
  // Digest of every table's name, schema and statistics — changes iff the
  // estimator-visible state changed. Two snapshots with equal stats_digest
  // produce identical estimates for identical queries and options.
  uint64_t stats_digest() const { return stats_digest_; }

  std::string DebugString() const;

 private:
  friend class SnapshotBuilder;
  CatalogSnapshot(Catalog catalog, uint64_t version);

  Catalog catalog_;
  uint64_t version_ = 0;
  uint64_t stats_digest_ = 0;
};

// Accumulates catalog mutations, then freezes the result into a snapshot.
// Single-threaded use; the Database serialises builders behind its writer
// mutex. Table payloads carried over from `base` are shared, not copied.
class SnapshotBuilder {
 public:
  // Starts from an empty catalog.
  SnapshotBuilder() = default;
  // Starts from the contents of an existing snapshot (tables shared).
  explicit SnapshotBuilder(const CatalogSnapshot& base);

  // Registers a new table, analysing it with `options`.
  StatusOr<int> AddTable(const std::string& name, Table table,
                         const AnalyzeOptions& options);
  // Registers a new table with caller-supplied statistics.
  StatusOr<int> AddTableWithStats(const std::string& name, Table table,
                                  TableStats stats);
  // Moves every entry of `source` in (tables shared from its entries).
  // Fails on a name collision; earlier entries stay imported.
  Status ImportTables(const Catalog& source);

  // Re-collects statistics for one table / every table.
  Status Reanalyze(int table_id, const AnalyzeOptions& options);
  Status ReanalyzeAll(const AnalyzeOptions& options);
  // Replaces one table's statistics wholesale.
  Status SetStats(int table_id, TableStats stats);

  StatusOr<int> ResolveTable(const std::string& name) const;
  int num_tables() const { return catalog_.num_tables(); }

  // Seals the catalog and wraps it into a snapshot carrying `version`.
  // The builder is spent afterwards (its catalog has been moved out).
  std::shared_ptr<const CatalogSnapshot> Build(uint64_t version) &&;

 private:
  Catalog catalog_;
};

}  // namespace joinest

#endif  // JOINEST_SERVICE_SNAPSHOT_H_
