#include "service/fingerprint.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace joinest {

void Fingerprint::MixBytes(const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    state_ ^= bytes[i];
    state_ *= 1099511628211ull;  // FNV prime.
  }
}

void Fingerprint::MixU64(uint64_t v) { MixBytes(&v, sizeof(v)); }

void Fingerprint::MixDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  MixU64(bits);
}

void Fingerprint::MixString(const std::string& s) {
  // Length-prefixed so ("ab","c") and ("a","bc") differ.
  MixU64(s.size());
  MixBytes(s.data(), s.size());
}

namespace {

void MixValue(Fingerprint& fp, const Value& v) {
  fp.MixInt(static_cast<int>(v.type()));
  switch (v.type()) {
    case TypeKind::kInt64:
      fp.MixI64(v.AsInt64());
      break;
    case TypeKind::kDouble:
      fp.MixDouble(v.AsDouble());
      break;
    case TypeKind::kString:
      fp.MixString(v.AsString());
      break;
  }
}

void MixColumnRef(Fingerprint& fp, const ColumnRef& ref) {
  fp.MixInt(ref.table);
  fp.MixInt(ref.column);
}

// Digest of one canonicalised predicate, self-contained so predicate
// digests can be combined order-independently.
uint64_t PredicateDigest(const Predicate& predicate) {
  const Predicate canonical = predicate.Canonical();
  Fingerprint fp;
  fp.MixInt(static_cast<int>(canonical.kind));
  MixColumnRef(fp, canonical.left);
  fp.MixInt(static_cast<int>(canonical.op));
  MixColumnRef(fp, canonical.right);
  MixValue(fp, canonical.constant);
  return fp.digest();
}

void MixEstimationOptions(Fingerprint& fp, const EstimationOptions& options) {
  fp.MixBool(options.transitive_closure);
  fp.MixBool(options.profile.apply_local_effects);
  fp.MixBool(options.profile.linear_distinct);
  fp.MixBool(options.profile.local.use_histograms);
  fp.MixInt(static_cast<int>(options.rule));
  fp.MixInt(static_cast<int>(options.representative));
  fp.MixBool(options.histogram_join_selectivity);
  // Runtime-selectivity feedback: the store's epoch advances with every
  // materially new observation, so cached estimates computed against stale
  // observations can never be served.
  fp.MixBool(options.runtime_selectivities != nullptr);
  fp.MixU64(options.runtime_selectivities != nullptr
                ? options.runtime_selectivities->epoch()
                : 0);
  // Cardinality feedback, same epoch contract. The injected fingerprint
  // routine deliberately does not participate: it is process state (a
  // function pointer), and there is exactly one canonical implementation.
  fp.MixBool(options.feedback.store != nullptr);
  fp.MixU64(options.feedback.store != nullptr ? options.feedback.store->epoch()
                                              : 0);
  fp.MixInt(options.feedback.store != nullptr ? options.feedback.min_tables
                                              : 0);
}

}  // namespace

uint64_t QuerySpecFingerprint(const QuerySpec& spec) {
  Fingerprint fp;
  // Which catalog tables, in query-local index order (predicates reference
  // tables positionally, so position matters; aliases do not).
  fp.MixInt(spec.num_tables());
  for (const TableRef& table : spec.tables) fp.MixInt(table.catalog_id);
  // Predicates, order-independently: a conjunction is a set.
  std::vector<uint64_t> digests;
  digests.reserve(spec.predicates.size());
  for (const Predicate& p : spec.predicates) {
    digests.push_back(PredicateDigest(p));
  }
  std::sort(digests.begin(), digests.end());
  fp.MixU64(digests.size());
  for (uint64_t d : digests) fp.MixU64(d);
  // Output shape.
  fp.MixBool(spec.count_star);
  fp.MixU64(spec.select.size());
  for (const ColumnRef& ref : spec.select) MixColumnRef(fp, ref);
  fp.MixU64(spec.group_by.size());
  for (const ColumnRef& ref : spec.group_by) MixColumnRef(fp, ref);
  return fp.digest();
}

uint64_t SubPlanFingerprint(const Catalog& catalog, const QuerySpec& spec,
                            const std::vector<Predicate>& predicates,
                            uint64_t mask) {
  // Canonical table order: by catalog NAME (stable across republishes and
  // FROM-clause permutations), query-local index as the self-join
  // tie-break. remap[old query-local index] = canonical position.
  std::vector<int> members;
  for (int t = 0; t < spec.num_tables(); ++t) {
    if (mask & (uint64_t{1} << t)) members.push_back(t);
  }
  std::sort(members.begin(), members.end(), [&](int a, int b) {
    const std::string& name_a = catalog.table_name(spec.tables[a].catalog_id);
    const std::string& name_b = catalog.table_name(spec.tables[b].catalog_id);
    if (name_a != name_b) return name_a < name_b;
    return a < b;
  });
  std::vector<int> remap(spec.num_tables(), -1);
  for (size_t pos = 0; pos < members.size(); ++pos) {
    remap[members[pos]] = static_cast<int>(pos);
  }

  Fingerprint fp;
  fp.MixU64(members.size());
  for (int t : members) {
    fp.MixString(catalog.table_name(spec.tables[t].catalog_id));
  }

  // Predicates fully contained in the mask, rewritten to the canonical
  // table order and combined order-independently (a conjunction is a set).
  std::vector<uint64_t> digests;
  for (const Predicate& p : predicates) {
    Predicate contained = p;
    if ((mask & (uint64_t{1} << p.left.table)) == 0) continue;
    contained.left.table = remap[p.left.table];
    if (p.kind != Predicate::Kind::kLocalConst) {
      if ((mask & (uint64_t{1} << p.right.table)) == 0) continue;
      contained.right.table = remap[p.right.table];
    }
    digests.push_back(PredicateDigest(contained));
  }
  std::sort(digests.begin(), digests.end());
  fp.MixU64(digests.size());
  for (uint64_t d : digests) fp.MixU64(d);
  return fp.digest();
}

uint64_t EstimationOptionsDigest(const EstimationOptions& options) {
  Fingerprint fp;
  MixEstimationOptions(fp, options);
  return fp.digest();
}

uint64_t OptimizerOptionsDigest(const OptimizerOptions& options) {
  Fingerprint fp;
  fp.MixInt(static_cast<int>(options.enumerator));
  fp.MixU64(options.randomized.seed);
  fp.MixInt(options.randomized.restarts);
  fp.MixInt(options.randomized.max_moves);
  fp.MixDouble(options.randomized.initial_temperature);
  fp.MixDouble(options.randomized.cooling);
  MixEstimationOptions(fp, options.estimation);
  fp.MixU64(options.methods.size());
  for (JoinMethod method : options.methods) {
    fp.MixInt(static_cast<int>(method));
  }
  fp.MixBool(options.avoid_cartesian);
  fp.MixBool(options.allow_bushy);
  fp.MixDouble(options.cost.scan_tuple_cost);
  fp.MixDouble(options.cost.filter_cost);
  fp.MixDouble(options.cost.compare_cost);
  fp.MixDouble(options.cost.hash_build_cost);
  fp.MixDouble(options.cost.hash_probe_cost);
  fp.MixDouble(options.cost.sort_factor);
  fp.MixDouble(options.cost.merge_cost);
  fp.MixDouble(options.cost.index_build_cost);
  fp.MixDouble(options.cost.index_probe_cost);
  fp.MixDouble(options.cost.output_tuple_cost);
  return fp.digest();
}

uint64_t AnalyzeOptionsDigest(const AnalyzeOptions& options) {
  Fingerprint fp;
  fp.MixInt(static_cast<int>(options.stats_mode));
  fp.MixInt(static_cast<int>(options.histogram_kind));
  fp.MixInt(options.histogram_buckets);
  fp.MixInt(options.end_biased_singletons);
  fp.MixDouble(options.sample_fraction);
  fp.MixU64(options.sample_seed);
  fp.MixInt(options.sketch.hll_precision);
  fp.MixInt(options.sketch.cms_depth);
  fp.MixInt(options.sketch.cms_width);
  fp.MixInt(options.sketch.top_k);
  fp.MixInt(options.sketch.reservoir_capacity);
  fp.MixU64(options.sketch.seed);
  fp.MixInt(options.num_partitions);
  return fp.digest();
}

uint64_t TableStatsDigest(const TableStats& stats) {
  Fingerprint fp;
  fp.MixDouble(stats.row_count);
  fp.MixInt(static_cast<int>(stats.source));
  fp.MixU64(stats.columns.size());
  for (const ColumnStats& column : stats.columns) {
    fp.MixDouble(column.distinct_count);
    fp.MixBool(column.min.has_value());
    if (column.min) fp.MixDouble(*column.min);
    fp.MixBool(column.max.has_value());
    if (column.max) fp.MixDouble(*column.max);
    fp.MixBool(column.distinct_relative_error.has_value());
    if (column.distinct_relative_error) {
      fp.MixDouble(*column.distinct_relative_error);
    }
    if (column.histogram == nullptr) {
      fp.MixBool(false);
    } else {
      fp.MixBool(true);
      fp.MixInt(static_cast<int>(column.histogram->kind()));
      fp.MixU64(column.histogram->buckets().size());
      for (const HistogramBucket& bucket : column.histogram->buckets()) {
        fp.MixDouble(bucket.lo);
        fp.MixDouble(bucket.hi);
        fp.MixDouble(bucket.rows);
        fp.MixDouble(bucket.distinct);
      }
    }
  }
  return fp.digest();
}

}  // namespace joinest
