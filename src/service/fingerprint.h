// Canonical fingerprints for the estimation service's cache keys.
//
// A cache entry is valid iff three things match: WHAT is being asked (the
// query), AGAINST WHICH statistics (the catalog snapshot) and UNDER WHICH
// configuration (the estimation / optimizer options). Each dimension gets
// its own 64-bit digest:
//
//   * QuerySpecFingerprint — semantic identity of a resolved QuerySpec.
//     Predicates are canonicalised (operand order normalised via
//     Predicate::Canonical) and combined order-independently, so
//     `WHERE a.x = b.y AND a.k < 3` and `WHERE a.k < 3 AND b.y = a.x`
//     collide on purpose. Table aliases do not participate (they change
//     names, not semantics); catalog ids, projection, COUNT(*) and
//     GROUP BY do.
//   * EstimationOptionsDigest / OptimizerOptionsDigest / AnalyzeOptionsDigest
//     — field-wise digests of the knob structs. Any knob that can change a
//     result participates.
//   * TableStatsDigest / tie-breaking digests used by CatalogSnapshot.
//
// All digests are FNV-1a over the fields' raw bytes — deterministic within
// a process run and across runs (no pointer values, no container addresses).

#ifndef JOINEST_SERVICE_FINGERPRINT_H_
#define JOINEST_SERVICE_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "estimator/analyzed_query.h"
#include "optimizer/optimizer.h"
#include "query/query_spec.h"
#include "stats/column_stats.h"
#include "storage/analyze.h"

namespace joinest {

// Incremental FNV-1a (64-bit). Mix* methods fold a field into the state;
// the order of Mix calls is part of the digest, so callers fix a canonical
// field order.
class Fingerprint {
 public:
  uint64_t digest() const { return state_; }

  void MixBytes(const void* data, size_t size);
  void MixU64(uint64_t v);
  void MixI64(int64_t v) { MixU64(static_cast<uint64_t>(v)); }
  void MixInt(int v) { MixI64(v); }
  void MixBool(bool v) { MixU64(v ? 1 : 0); }
  // Bit pattern, not value: -0.0 and 0.0 digest differently, NaNs stably.
  void MixDouble(double v);
  void MixString(const std::string& s);

 private:
  uint64_t state_ = 14695981039346656037ull;  // FNV offset basis.
};

// Semantic identity of a resolved query (see file comment).
uint64_t QuerySpecFingerprint(const QuerySpec& spec);

// Canonical fingerprint of one join SUB-plan: the tables whose query-local
// index bit is set in `mask`, plus every predicate of `predicates` fully
// contained in the mask (both sides of a join, the single table of a local
// predicate). This is the key of the feedback store
// (estimator/feedback_store.h): an actual cardinality observed for a
// sub-plan in one query is served to every estimate whose sub-plan
// fingerprints the same.
//
// Canonicalisation, so equal sub-plans collide on purpose:
//   * tables participate by catalog NAME (not query-local position or
//     catalog id), ordered lexicographically — `FROM A, B` and `FROM B, A`
//     prefix-fingerprint identically, and the key survives republishes
//     that renumber catalog ids. Self-join aliases tie-break by query-local
//     index, keeping them distinct deterministic slots.
//   * predicate column refs are rewritten to the canonical table order,
//     each predicate is canonicalised (Predicate::Canonical) and digested
//     self-contained, and the digests combine order-independently —
//     conjunct order never matters.
//
// Pass the CLOSED predicate set (AnalyzedQuery::predicates()) for keys that
// match across syntactically different but semantically equal queries; the
// raw spec predicates work too but only match their own spelling.
uint64_t SubPlanFingerprint(const Catalog& catalog, const QuerySpec& spec,
                            const std::vector<Predicate>& predicates,
                            uint64_t mask);

// Field-wise digests of the option structs.
uint64_t EstimationOptionsDigest(const EstimationOptions& options);
uint64_t OptimizerOptionsDigest(const OptimizerOptions& options);
uint64_t AnalyzeOptionsDigest(const AnalyzeOptions& options);

// Digest of one table's statistics (row count, per-column d/min/max/
// source/histogram shape). CatalogSnapshot folds these per-table digests
// (plus names and schemas) into its stats_digest.
uint64_t TableStatsDigest(const TableStats& stats);

}  // namespace joinest

#endif  // JOINEST_SERVICE_FINGERPRINT_H_
