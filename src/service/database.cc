#include "service/database.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "obs/pool_obs.h"
#include "query/parser.h"
#include "service/fingerprint.h"

namespace joinest {

// ---------------------------------------------------------- Validation

Status ValidateAnalyzeOptions(const AnalyzeOptions& options) {
  if (!(options.sample_fraction > 0.0) || options.sample_fraction > 1.0 ||
      !std::isfinite(options.sample_fraction)) {
    return InvalidArgument("analyze: sample_fraction must be in (0, 1]");
  }
  if (options.histogram_buckets < 1) {
    return InvalidArgument("analyze: histogram_buckets must be >= 1");
  }
  if (options.end_biased_singletons < 0) {
    return InvalidArgument("analyze: end_biased_singletons must be >= 0");
  }
  if (options.num_partitions < 1) {
    return InvalidArgument("analyze: num_partitions must be >= 1");
  }
  if (options.sketch.hll_precision < 4 || options.sketch.hll_precision > 18) {
    return InvalidArgument("analyze: sketch.hll_precision must be in [4, 18]");
  }
  if (options.sketch.cms_depth < 1 || options.sketch.cms_width < 1) {
    return InvalidArgument("analyze: sketch CMS dimensions must be >= 1");
  }
  if (options.sketch.top_k < 0) {
    return InvalidArgument("analyze: sketch.top_k must be >= 0");
  }
  if (options.sketch.reservoir_capacity < 1) {
    return InvalidArgument("analyze: sketch.reservoir_capacity must be >= 1");
  }
  return Status::OK();
}

Status ValidateEstimationOptions(const EstimationOptions& options) {
  // Every combination of the estimation knobs is currently meaningful; the
  // hook exists so later knobs get a single validation point.
  (void)options;
  return Status::OK();
}

Status ValidateOptimizerOptions(const OptimizerOptions& options) {
  JOINEST_RETURN_IF_ERROR(ValidateEstimationOptions(options.estimation));
  if (options.methods.empty()) {
    return InvalidArgument("optimizer: the join-method list must not be "
                           "empty");
  }
  if (options.randomized.restarts < 1) {
    return InvalidArgument("optimizer: randomized.restarts must be >= 1");
  }
  if (options.randomized.max_moves < 1) {
    return InvalidArgument("optimizer: randomized.max_moves must be >= 1");
  }
  if (!(options.randomized.initial_temperature > 0.0) ||
      !std::isfinite(options.randomized.initial_temperature)) {
    return InvalidArgument(
        "optimizer: randomized.initial_temperature must be positive");
  }
  if (!(options.randomized.cooling > 0.0) ||
      !(options.randomized.cooling < 1.0)) {
    return InvalidArgument("optimizer: randomized.cooling must be in (0, 1)");
  }
  if (options.allow_bushy &&
      options.enumerator !=
          OptimizerOptions::Enumerator::kDynamicProgramming) {
    return InvalidArgument("optimizer: allow_bushy requires the "
                           "dynamic-programming enumerator");
  }
  for (double cost : {options.cost.scan_tuple_cost, options.cost.filter_cost,
                      options.cost.compare_cost, options.cost.hash_build_cost,
                      options.cost.hash_probe_cost, options.cost.sort_factor,
                      options.cost.merge_cost, options.cost.index_build_cost,
                      options.cost.index_probe_cost,
                      options.cost.output_tuple_cost}) {
    if (!std::isfinite(cost) || cost < 0.0) {
      return InvalidArgument("optimizer: cost parameters must be finite and "
                             ">= 0");
    }
  }
  return Status::OK();
}

// ------------------------------------------------------ Session options

namespace {

// Keeps the two views consistent: features_ is the public face of the
// paper knobs; optimizer_.estimation is what the pipeline consumes. The
// facade is the one sanctioned translator between them, hence the
// lint:allow on the raw field writes.
void PullFeaturesFromEstimation(const EstimationOptions& estimation,
                                EstimatorFeatures& features) {
  features.transitive_closure = estimation.transitive_closure;
  features.histogram_join_selectivity = estimation.histogram_join_selectivity;
}

void PushFeaturesIntoEstimation(const EstimatorFeatures& features,
                                EstimationOptions& estimation) {
  // lint:allow(estimation-options-pokes) — the facade's translation point.
  estimation.transitive_closure = features.transitive_closure;
  // lint:allow(estimation-options-pokes) — the facade's translation point.
  estimation.histogram_join_selectivity = features.histogram_join_selectivity;
}

}  // namespace

Session::Options& Session::Options::set_preset(AlgorithmPreset preset) {
  optimizer_.estimation = PresetOptions(preset);
  PullFeaturesFromEstimation(optimizer_.estimation, features_);
  return *this;
}

Session::Options& Session::Options::set_features(EstimatorFeatures features) {
  features_ = features;
  PushFeaturesIntoEstimation(features_, optimizer_.estimation);
  return *this;
}

Session::Options& Session::Options::set_estimation(
    EstimationOptions estimation) {
  optimizer_.estimation = std::move(estimation);
  PullFeaturesFromEstimation(optimizer_.estimation, features_);
  return *this;
}

Session::Options& Session::Options::set_optimizer(OptimizerOptions optimizer) {
  optimizer_ = std::move(optimizer);
  PullFeaturesFromEstimation(optimizer_.estimation, features_);
  return *this;
}

Session::Options& Session::Options::set_use_cache(bool use_cache) {
  use_cache_ = use_cache;
  return *this;
}

Session::Options& Session::Options::set_capture_trace(bool capture) {
  capture_trace_ = capture;
  return *this;
}

Session::Options& Session::Options::set_with_true_cardinalities(
    bool with_true) {
  with_true_cardinalities_ = with_true;
  return *this;
}

Session::Options& Session::Options::set_predicate_transfer(bool enabled) {
  features_.runtime_selectivities = enabled;
  return *this;
}

Status Session::Options::Validate() const {
  JOINEST_RETURN_IF_ERROR(features_.Validate());
  return ValidateOptimizerOptions(optimizer_);
}

// ----------------------------------------------------- Database options

Database::Options& Database::Options::set_analyze(AnalyzeOptions analyze) {
  analyze_ = std::move(analyze);
  return *this;
}

Database::Options& Database::Options::set_cache_capacity(int64_t entries) {
  cache_capacity_ = entries;
  return *this;
}

Database::Options& Database::Options::set_cache_shards(int shards) {
  cache_shards_ = shards;
  return *this;
}

Database::Options& Database::Options::set_cache_label(std::string label) {
  cache_label_ = std::move(label);
  return *this;
}

Database::Options& Database::Options::set_recorder(
    FlightRecorder::Options recorder) {
  recorder_ = recorder;
  return *this;
}

Database::Options& Database::Options::set_accuracy(
    AccuracyMonitor::Options accuracy) {
  accuracy_ = accuracy;
  return *this;
}

Database::Options& Database::Options::set_feedback_capacity(
    int64_t observations) {
  feedback_capacity_ = observations;
  return *this;
}

Status Database::Options::Validate() const {
  if (feedback_capacity_ < 1 || feedback_capacity_ > (int64_t{1} << 30)) {
    return InvalidArgument("database: feedback_capacity must be in [1, 2^30]");
  }
  if (cache_capacity_ < 1 || cache_capacity_ > (int64_t{1} << 30)) {
    return InvalidArgument("database: cache_capacity must be in [1, 2^30]");
  }
  if (cache_shards_ < 1 || cache_shards_ > 4096) {
    return InvalidArgument("database: cache_shards must be in [1, 4096]");
  }
  if (cache_label_.empty()) {
    return InvalidArgument("database: cache_label must not be empty");
  }
  JOINEST_RETURN_IF_ERROR(recorder_.Validate());
  JOINEST_RETURN_IF_ERROR(accuracy_.Validate());
  return ValidateAnalyzeOptions(analyze_);
}

// ------------------------------------------------------------- Payloads

struct EstimateResult::Payload {
  std::shared_ptr<const CatalogSnapshot> snapshot;  // Keeps analyzed valid.
  AnalyzedQuery analyzed;
  double rows = 0;
  double groups = 0;
  std::vector<RuleEstimate> per_rule;
};

double EstimateResult::rows() const {
  JOINEST_CHECK(payload_ != nullptr);
  return payload_->rows;
}

double EstimateResult::groups() const {
  JOINEST_CHECK(payload_ != nullptr);
  return payload_->groups;
}

const std::vector<EstimateResult::RuleEstimate>& EstimateResult::per_rule()
    const {
  JOINEST_CHECK(payload_ != nullptr);
  return payload_->per_rule;
}

const AnalyzedQuery& EstimateResult::analysis() const {
  JOINEST_CHECK(payload_ != nullptr);
  return payload_->analyzed;
}

uint64_t EstimateResult::snapshot_version() const {
  JOINEST_CHECK(payload_ != nullptr);
  return payload_->snapshot->version();
}

struct PlannedQuery::Payload {
  std::shared_ptr<const CatalogSnapshot> snapshot;  // Keeps the plan valid.
  QuerySpec spec;
  OptimizedPlan plan;
};

const PlanNode& PlannedQuery::plan() const {
  JOINEST_CHECK(payload_ != nullptr);
  return *payload_->plan.root;
}

double PlannedQuery::estimated_cost() const {
  JOINEST_CHECK(payload_ != nullptr);
  return payload_->plan.estimated_cost;
}

double PlannedQuery::estimated_rows() const {
  JOINEST_CHECK(payload_ != nullptr);
  return payload_->plan.estimated_rows;
}

const std::vector<int>& PlannedQuery::join_order() const {
  JOINEST_CHECK(payload_ != nullptr);
  return payload_->plan.join_order;
}

const std::vector<double>& PlannedQuery::intermediate_estimates() const {
  JOINEST_CHECK(payload_ != nullptr);
  return payload_->plan.intermediate_estimates;
}

std::string PlannedQuery::ToString() const {
  JOINEST_CHECK(payload_ != nullptr);
  return PlanToString(*payload_->plan.root, payload_->snapshot->catalog(),
                      payload_->spec);
}

uint64_t PlannedQuery::snapshot_version() const {
  JOINEST_CHECK(payload_ != nullptr);
  return payload_->snapshot->version();
}

// -------------------------------------------------------------- Session

namespace {

// Cold/warm estimate latency, registered once (the registry lookup takes a
// mutex — too hot for the cache-hit path).
HistogramMetric& EstimateSeconds(bool warm) {
  static HistogramMetric& cold = MetricsRegistry::Global().GetHistogram(
      "service_estimate_seconds", "Session::Estimate latency",
      HistogramBuckets::Seconds(), {{"path", "cold"}});
  static HistogramMetric& hot = MetricsRegistry::Global().GetHistogram(
      "service_estimate_seconds", "Session::Estimate latency",
      HistogramBuckets::Seconds(), {{"path", "warm"}});
  return warm ? hot : cold;
}

Status CheckPrepared(const PreparedQuery& prepared) {
  if (prepared.snapshot == nullptr) {
    return InvalidArgument("prepared query carries no snapshot (was it "
                           "default-constructed?)");
  }
  return Status::OK();
}

}  // namespace

EstimationOptions Session::EffectiveEstimation() const {
  EstimationOptions estimation = options_.estimation();
  if (options_.predicate_transfer()) {
    // lint:allow(estimation-options-pokes) — the facade's injection point.
    estimation.runtime_selectivities = database_->runtime_selectivities_;
  }
  if (options_.feedback()) {
    // lint:allow(estimation-options-pokes) — the facade's injection point.
    estimation.feedback.store = database_->feedback_store_;
    // lint:allow(estimation-options-pokes) — the facade's injection point.
    estimation.feedback.fingerprint = &SubPlanFingerprint;
    // lint:allow(estimation-options-pokes) — the facade's injection point.
    estimation.feedback.min_tables = options_.features().feedback_min_tables;
  }
  return estimation;
}

OptimizerOptions Session::EffectiveOptimizer() const {
  OptimizerOptions optimizer = options_.optimizer();
  // Same injection for the optimizer's embedded copy, so plan enumeration
  // and the headline estimate agree about every observation.
  optimizer.estimation = EffectiveEstimation();
  return optimizer;
}

StatusOr<std::shared_ptr<const PtResult>> Session::MaybeRunPredicateTransfer(
    const PreparedQuery& prepared) const {
  if (!options_.predicate_transfer() || prepared.spec.num_tables() < 2) {
    return std::shared_ptr<const PtResult>();
  }
  JOINEST_ASSIGN_OR_RETURN(
      PtResult pt,
      RunPredicateTransfer(prepared.snapshot->catalog(), prepared.spec));
  auto shared = std::make_shared<const PtResult>(std::move(pt));
  // Feed the observed rates back; later Estimate/Optimize calls in
  // transfer-enabled sessions see them (the store epoch in the options
  // digest invalidates stale cached analyses).
  RecordRuntimeSelectivities(*shared, *database_->runtime_selectivities_);
  return shared;
}

StatusOr<PreparedQuery> Session::Prepare(const std::string& sql) const {
  const auto start = std::chrono::steady_clock::now();
  PreparedQuery prepared;
  prepared.snapshot = database_->snapshot();
  prepared.sql = sql;
  JOINEST_ASSIGN_OR_RETURN(prepared.spec,
                           ParseQuery(prepared.snapshot->catalog(), sql));
  prepared.fingerprint = QuerySpecFingerprint(prepared.spec);
  prepared.parse_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  return prepared;
}

QueryRecord Session::BaseRecord(const PreparedQuery& prepared,
                                const EstimateResult& estimate) const {
  QueryRecord record;
  record.fingerprint = prepared.fingerprint;
  record.snapshot_version = prepared.snapshot->version();
  record.rule = SelectivityRuleName(options_.estimation().rule);
  record.estimated_rows = estimate.rows();
  record.parse_seconds = prepared.parse_seconds;
  record.per_rule.reserve(estimate.per_rule().size());
  for (const EstimateResult::RuleEstimate& rule : estimate.per_rule()) {
    record.per_rule.push_back(
        QueryRecord::RuleEstimate{rule.rule, rule.rows, 0.0});
  }
  return record;
}

StatusOr<EstimateResult> Session::Estimate(
    const PreparedQuery& prepared) const {
  double seconds = 0.0;
  JOINEST_ASSIGN_OR_RETURN(EstimateResult result,
                           EstimateImpl(prepared, &seconds));
  if (database_->recorder().enabled()) {
    QueryRecord record = BaseRecord(prepared, result);
    record.api = QueryRecord::Api::kEstimate;
    record.cache_hit = result.cache_hit();
    record.estimate_seconds = seconds;
    record.total_seconds = seconds;
    database_->RecordQuery(record);
  }
  return result;
}

StatusOr<EstimateResult> Session::EstimateImpl(const PreparedQuery& prepared,
                                               double* seconds) const {
  const auto call_start = std::chrono::steady_clock::now();
  const auto elapsed = [call_start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         call_start)
        .count();
  };
  JOINEST_RETURN_IF_ERROR(CheckPrepared(prepared));
  const EstimationOptions estimation = EffectiveEstimation();
  const ServiceCacheKey key{prepared.fingerprint,
                            prepared.snapshot->version(),
                            EstimationOptionsDigest(estimation),
                            CacheEntryKind::kAnalysis};
  if (options_.use_cache()) {
    if (std::shared_ptr<const void> hit = database_->cache().Lookup(key)) {
      const double warm_seconds = elapsed();
      EstimateSeconds(/*warm=*/true).Observe(warm_seconds);
      if (seconds != nullptr) *seconds = warm_seconds;
      EstimateResult result;
      result.payload_ =
          std::static_pointer_cast<const EstimateResult::Payload>(hit);
      result.cache_hit_ = true;
      return result;
    }
  }

  const Catalog& catalog = prepared.snapshot->catalog();
  JOINEST_ASSIGN_OR_RETURN(
      AnalyzedQuery analyzed,
      AnalyzedQuery::Create(catalog, prepared.spec, estimation));

  auto payload = std::make_shared<EstimateResult::Payload>(
      EstimateResult::Payload{prepared.snapshot, std::move(analyzed), 0, 0,
                              {}});
  payload->rows = payload->analyzed.EstimateFullJoin();
  payload->groups = payload->analyzed.EstimateGroupCount();

  // The paper's comparison rules, computed while everything is hot; a
  // cache hit then answers the whole §8 row at once.
  static constexpr struct {
    const char* name;
    AlgorithmPreset preset;
  } kRules[] = {{"LS", AlgorithmPreset::kELS},
                {"M", AlgorithmPreset::kSM},
                {"SS", AlgorithmPreset::kSSS}};
  for (const auto& rule : kRules) {
    JOINEST_ASSIGN_OR_RETURN(
        AnalyzedQuery variant,
        AnalyzedQuery::Create(catalog, prepared.spec,
                              PresetOptions(rule.preset)));
    payload->per_rule.push_back(
        EstimateResult::RuleEstimate{rule.name, variant.EstimateFullJoin()});
  }

  if (options_.use_cache()) database_->cache().Insert(key, payload);

  const double cold_seconds = elapsed();
  EstimateSeconds(/*warm=*/false).Observe(cold_seconds);
  if (seconds != nullptr) *seconds = cold_seconds;
  EstimateResult result;
  result.payload_ = std::move(payload);
  result.cache_hit_ = false;
  return result;
}

StatusOr<EstimateResult> Session::Estimate(const std::string& sql) const {
  JOINEST_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(sql));
  return Estimate(prepared);
}

StatusOr<PlannedQuery> Session::Optimize(const PreparedQuery& prepared) const {
  JOINEST_RETURN_IF_ERROR(CheckPrepared(prepared));
  const OptimizerOptions optimizer = EffectiveOptimizer();
  const ServiceCacheKey key{prepared.fingerprint,
                            prepared.snapshot->version(),
                            OptimizerOptionsDigest(optimizer),
                            CacheEntryKind::kPlan};
  if (options_.use_cache()) {
    if (std::shared_ptr<const void> hit = database_->cache().Lookup(key)) {
      PlannedQuery result;
      result.payload_ =
          std::static_pointer_cast<const PlannedQuery::Payload>(hit);
      result.cache_hit_ = true;
      return result;
    }
  }

  JOINEST_ASSIGN_OR_RETURN(
      OptimizedPlan plan,
      OptimizeQuery(prepared.snapshot->catalog(), prepared.spec, optimizer));
  auto payload = std::make_shared<PlannedQuery::Payload>(PlannedQuery::Payload{
      prepared.snapshot, prepared.spec, std::move(plan)});

  if (options_.use_cache()) database_->cache().Insert(key, payload);

  PlannedQuery result;
  result.payload_ = std::move(payload);
  result.cache_hit_ = false;
  return result;
}

StatusOr<PlannedQuery> Session::Optimize(const std::string& sql) const {
  JOINEST_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(sql));
  return Optimize(prepared);
}

namespace {

// Copies the predicate-transfer and kernel-selection evidence into a record.
void FillRuntimeFields(const PtResult* pt, const ExecutionResult& execution,
                       QueryRecord& record) {
  if (pt != nullptr) {
    record.pt_seconds = pt->seconds;
    record.pt_rows_pruned = static_cast<double>(pt->rows_pruned());
    record.pt_filters.reserve(pt->filters.size());
    for (const PtFilterStats& f : pt->filters) {
      record.pt_filters.push_back(
          QueryRecord::PtFilter{f.table_name, f.column_name, f.pass_rate});
    }
  }
  record.operators_total = execution.operators_total;
  record.kernels_specialized = execution.kernels_specialized;
}

// Bitmask covering every query-local table.
uint64_t FullTableMask(int num_tables) {
  return num_tables >= 64 ? ~uint64_t{0}
                          : (uint64_t{1} << num_tables) - 1;
}

}  // namespace

StatusOr<ExecuteResult> Session::Execute(const PreparedQuery& prepared) const {
  const auto call_start = std::chrono::steady_clock::now();
  JOINEST_ASSIGN_OR_RETURN(PlannedQuery planned, Optimize(prepared));
  JOINEST_ASSIGN_OR_RETURN(std::shared_ptr<const PtResult> pt,
                           MaybeRunPredicateTransfer(prepared));
  JOINEST_ASSIGN_OR_RETURN(
      ExecutionResult execution,
      ExecutePlan(prepared.snapshot->catalog(), prepared.spec, planned.plan(),
                  pt != nullptr ? &pt->selections : nullptr));
  ExecuteResult result;
  result.execution = std::move(execution);
  result.plan = std::move(planned);
  result.predicate_transfer = std::move(pt);

  const bool feedback_on = options_.feedback();
  if (database_->recorder().enabled() || feedback_on) {
    // EstimateImpl, not Estimate: the per-rule estimates belong in THIS
    // record, not in an extra synthetic Estimate record. Memoised, so a
    // warm workload pays one cache probe. The feedback loop reuses the
    // analysis for its CLOSED predicate set — fingerprints computed over
    // the closure match across syntactically different spellings.
    double estimate_seconds = 0.0;
    StatusOr<EstimateResult> estimate =
        EstimateImpl(prepared, &estimate_seconds);
    if (estimate.ok()) {
      const double actual = static_cast<double>(result.execution.count);
      const uint64_t subplan = SubPlanFingerprint(
          prepared.snapshot->catalog(), prepared.spec,
          estimate->analysis().predicates(),
          FullTableMask(prepared.spec.num_tables()));
      if (feedback_on) {
        // COUNT(*) of the join IS the join's cardinality (GROUP BY only
        // changes the output grouping, not the joined row count).
        database_->feedback_store_->Record(
            subplan, prepared.snapshot->version(), actual);
      }
      if (database_->recorder().enabled()) {
        QueryRecord record = BaseRecord(prepared, *estimate);
        record.api = QueryRecord::Api::kExecute;
        record.cache_hit = result.plan.cache_hit();
        record.actual_rows = actual;
        record.subplan_fingerprint = subplan;
        record.q_error = QErrorValue(record.estimated_rows, actual);
        for (QueryRecord::RuleEstimate& rule : record.per_rule) {
          rule.q_error = QErrorValue(rule.rows, actual);
        }
        FillRuntimeFields(result.predicate_transfer.get(), result.execution,
                          record);
        record.estimate_seconds = estimate_seconds;
        record.execute_seconds = result.execution.seconds;
        record.total_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          call_start)
                .count();
        database_->RecordQuery(record);
      }
    }
  }
  return result;
}

StatusOr<ExecuteResult> Session::Execute(const std::string& sql) const {
  JOINEST_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(sql));
  return Execute(prepared);
}

StatusOr<ExplainAnalyzeReport> Session::ExplainAnalyze(
    const PreparedQuery& prepared) const {
  JOINEST_ASSIGN_OR_RETURN(PlannedQuery planned, Optimize(prepared));
  JOINEST_ASSIGN_OR_RETURN(std::shared_ptr<const PtResult> pt,
                           MaybeRunPredicateTransfer(prepared));
  ExplainAnalyzeOptions ea;
  ea.estimation = EffectiveEstimation();
  ea.with_true_cardinalities = options_.with_true_cardinalities();
  ea.capture_trace = options_.capture_trace();
  if (pt != nullptr) {
    ea.scan_selections = &pt->selections;
    for (const PtFilterStats& f : pt->filters) {
      ea.predicate_transfer.push_back(PtFilterRow{
          f.table_name, f.column_name, f.forward, f.probed, f.passed,
          f.pass_rate});
    }
  }
  JOINEST_ASSIGN_OR_RETURN(
      ExplainAnalyzeReport report,
      ExplainAnalyzePlan(prepared.snapshot->catalog(), prepared.spec,
                         planned.plan(), ea));

  const bool feedback_on = options_.feedback();
  if (database_->recorder().enabled() || feedback_on) {
    double estimate_seconds = 0.0;
    StatusOr<EstimateResult> estimate =
        EstimateImpl(prepared, &estimate_seconds);
    if (estimate.ok()) {
      const Catalog& catalog = prepared.snapshot->catalog();
      const std::vector<Predicate>& closed =
          estimate->analysis().predicates();
      const uint64_t version = prepared.snapshot->version();
      const double actual = static_cast<double>(report.count);
      const uint64_t subplan =
          SubPlanFingerprint(catalog, prepared.spec, closed,
                             FullTableMask(prepared.spec.num_tables()));

      // Per-join-level prefix fingerprints: the executor walks the planned
      // left-deep leaf order, so level k's actual cardinality is the join
      // of order[0..k+1]. This is the feedback store's richest food —
      // every prefix of one EXPLAIN ANALYZE seeds later estimates of any
      // query containing the same canonical sub-plan.
      const std::vector<int>& order = planned.join_order();
      std::vector<uint64_t> prefixes(report.join_levels.size(), 0);
      if (order.size() == static_cast<size_t>(prepared.spec.num_tables()) &&
          report.join_levels.size() + 1 == order.size()) {
        uint64_t prefix_mask = uint64_t{1} << order[0];
        for (size_t k = 0; k < report.join_levels.size(); ++k) {
          prefix_mask |= uint64_t{1} << order[k + 1];
          prefixes[k] =
              SubPlanFingerprint(catalog, prepared.spec, closed, prefix_mask);
        }
      }

      if (feedback_on) {
        database_->feedback_store_->Record(subplan, version, actual);
        for (size_t k = 0; k < report.join_levels.size(); ++k) {
          // True per-level cardinalities are only present when the session
          // ran the counting sub-queries (negative means "not measured").
          const double level_actual =
              static_cast<double>(report.join_levels[k].actual);
          if (prefixes[k] != 0 && level_actual >= 0.0) {
            database_->feedback_store_->Record(prefixes[k], version,
                                               level_actual);
          }
        }
      }

      if (database_->recorder().enabled()) {
        QueryRecord record = BaseRecord(prepared, *estimate);
        record.api = QueryRecord::Api::kExplainAnalyze;
        record.cache_hit = planned.cache_hit();
        record.actual_rows = actual;
        record.subplan_fingerprint = subplan;
        record.q_error = QErrorValue(record.estimated_rows, actual);
        for (QueryRecord::RuleEstimate& rule : record.per_rule) {
          rule.q_error = QErrorValue(rule.rows, actual);
        }
        record.join_levels.reserve(report.join_levels.size());
        for (size_t k = 0; k < report.join_levels.size(); ++k) {
          const ExplainAnalyzeReport::JoinLevel& level = report.join_levels[k];
          record.join_levels.push_back(QueryRecord::JoinLevel{
              level.level, static_cast<double>(level.actual), level.est_ls,
              level.est_m, level.est_ss, level.q_ls, level.q_m, level.q_ss,
              prefixes[k]});
        }
        if (pt != nullptr) {
          record.pt_seconds = pt->seconds;
          record.pt_rows_pruned = static_cast<double>(pt->rows_pruned());
          record.pt_filters.reserve(pt->filters.size());
          for (const PtFilterStats& f : pt->filters) {
            record.pt_filters.push_back(QueryRecord::PtFilter{
                f.table_name, f.column_name, f.pass_rate});
          }
        }
        record.estimate_seconds = estimate_seconds;
        record.execute_seconds = report.seconds;
        record.total_seconds = record.estimate_seconds + record.pt_seconds +
                               record.execute_seconds;
        database_->RecordQuery(record);
      }
    }
  }
  return report;
}

StatusOr<ExplainAnalyzeReport> Session::ExplainAnalyze(
    const std::string& sql) const {
  JOINEST_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(sql));
  return ExplainAnalyze(prepared);
}

// ------------------------------------------------------------- Database

StatusOr<std::unique_ptr<Database>> Database::Open() {
  return Open(Options());
}

StatusOr<std::unique_ptr<Database>> Database::Open(Options options) {
  JOINEST_RETURN_IF_ERROR(options.Validate());
  return std::make_unique<Database>(std::move(options));
}

Database::Database() : Database(Options()) {}

Database::Database(Options options) : options_(std::move(options)) {
  const Status valid = options_.Validate();
  JOINEST_CHECK(valid.ok()) << "Database options invalid: " << valid;
  cache_ = std::make_unique<ServiceCache>(options_.cache_capacity(),
                                          options_.cache_shards(),
                                          options_.cache_label());
  runtime_selectivities_ = std::make_shared<RuntimeSelectivityStore>();
  FeedbackStore::Options feedback_options;
  feedback_options.capacity = options_.feedback_capacity();
  feedback_store_ = std::make_shared<FeedbackStore>(feedback_options);
  recorder_ = std::make_unique<FlightRecorder>(options_.recorder());
  accuracy_monitor_ = std::make_unique<AccuracyMonitor>(options_.accuracy());
  // Opening a database is the service's natural "threads will be used"
  // moment: install the pool metrics observer before any stage submits.
  EnsureThreadPoolMetrics();
  // Version 0: the empty bootstrap snapshot, so snapshot() is never null.
  Publish(SnapshotBuilder().Build(0));
}

ThreadPool& Database::thread_pool() const { return SharedThreadPool(); }

template <typename Fn>
Status Database::Mutate(Fn&& mutate) {
  MutexLock lock(writer_mutex_);
  SnapshotBuilder builder(*snapshot());
  JOINEST_RETURN_IF_ERROR(mutate(builder));
  Publish(std::move(builder).Build(next_version_++));
  return Status::OK();
}

void Database::Publish(std::shared_ptr<const CatalogSnapshot> snapshot) {
  const uint64_t version = snapshot->version();
#if JOINEST_SERVICE_ATOMIC_SNAPSHOT
  snapshot_.store(std::move(snapshot), std::memory_order_release);
#else
  {
    MutexLock lock(snapshot_mutex_);
    snapshot_ = std::move(snapshot);
  }
#endif
  // Entries keyed to superseded versions can never hit again; reclaim them
  // eagerly rather than waiting for LRU pressure.
  cache_->InvalidateBefore(version);
  MetricsRegistry::Global()
      .GetGauge("service_snapshot_version",
                "version of the currently published catalog snapshot",
                {{"db", options_.cache_label()}})
      .Set(static_cast<double>(version));
}

std::shared_ptr<const CatalogSnapshot> Database::snapshot() const {
#if JOINEST_SERVICE_ATOMIC_SNAPSHOT
  return snapshot_.load(std::memory_order_acquire);
#else
  MutexLock lock(snapshot_mutex_);
  return snapshot_;
#endif
}

Status Database::LoadTable(const std::string& name, Table table) {
  return LoadTable(name, std::move(table), options_.analyze());
}

Status Database::LoadTable(const std::string& name, Table table,
                           const AnalyzeOptions& options) {
  JOINEST_RETURN_IF_ERROR(ValidateAnalyzeOptions(options));
  return Mutate([&](SnapshotBuilder& builder) -> Status {
    JOINEST_ASSIGN_OR_RETURN(
        [[maybe_unused]] int id,
        builder.AddTable(name, std::move(table), options));
    return Status::OK();
  });
}

Status Database::LoadTableWithStats(const std::string& name, Table table,
                                    TableStats stats) {
  return Mutate([&](SnapshotBuilder& builder) -> Status {
    JOINEST_ASSIGN_OR_RETURN(
        [[maybe_unused]] int id,
        builder.AddTableWithStats(name, std::move(table), std::move(stats)));
    return Status::OK();
  });
}

Status Database::ImportTables(Catalog source) {
  return Mutate([&](SnapshotBuilder& builder) -> Status {
    return builder.ImportTables(source);
  });
}

Status Database::Analyze() { return Analyze(options_.analyze()); }

// Statistics were re-collected: observations recorded against the old
// statistics may describe data (or a statistical view of it) that no longer
// exists, so BOTH runtime stores age together — the runtime-selectivity
// store drops everything (its keys are table names, not snapshot-stamped),
// and the feedback store drops observations older than the snapshot the
// re-ANALYZE just published. Plain LoadTable/ImportTables do NOT age:
// adding a table invalidates nothing previously observed.
void Database::AgeObservations() {
  runtime_selectivities_->Clear();
  feedback_store_->InvalidateBefore(snapshot()->version());
}

Status Database::Analyze(const AnalyzeOptions& options) {
  JOINEST_RETURN_IF_ERROR(ValidateAnalyzeOptions(options));
  JOINEST_RETURN_IF_ERROR(Mutate([&](SnapshotBuilder& builder) -> Status {
    return builder.ReanalyzeAll(options);
  }));
  AgeObservations();
  return Status::OK();
}

Status Database::AnalyzeTable(const std::string& name,
                              const AnalyzeOptions& options) {
  JOINEST_RETURN_IF_ERROR(ValidateAnalyzeOptions(options));
  JOINEST_RETURN_IF_ERROR(Mutate([&](SnapshotBuilder& builder) -> Status {
    JOINEST_ASSIGN_OR_RETURN(int id, builder.ResolveTable(name));
    return builder.Reanalyze(id, options);
  }));
  AgeObservations();
  return Status::OK();
}

Status Database::SetTableStats(const std::string& name, TableStats stats) {
  JOINEST_RETURN_IF_ERROR(Mutate([&](SnapshotBuilder& builder) -> Status {
    JOINEST_ASSIGN_OR_RETURN(int id, builder.ResolveTable(name));
    return builder.SetStats(id, std::move(stats));
  }));
  AgeObservations();
  return Status::OK();
}

void Database::RecordQuery(const QueryRecord& record) const {
  // The monitor only sees records that survived the capture policy, so the
  // querylog a drift alert points at always contains its evidence.
  if (recorder_->Record(record) && record.actual_rows >= 0.0) {
    accuracy_monitor_->Ingest(record);
  }
}

StatusOr<Session> Database::CreateSession(Session::Options options) const {
  JOINEST_RETURN_IF_ERROR(options.Validate());
  return Session(const_cast<Database*>(this), std::move(options));
}

}  // namespace joinest
