// Sharded LRU cache for analyzed queries, estimates and optimized plans.
//
// Keys are (query fingerprint, snapshot version, options digest, kind):
// everything that can change a result participates, so a hit is always
// safe to serve — a cached value for key K is, by construction, what the
// cold path would recompute for K (the service tests assert bit-identical
// doubles). Entries for superseded snapshot versions can never hit (the
// version is in the key); InvalidateBefore() reclaims their memory eagerly
// when a new snapshot is published.
//
// Concurrency: the key space is hash-partitioned over N independent
// shards, each protected by its own mutex and maintaining its own LRU
// list. Lookups touch exactly one shard and hold its lock only for the
// hash probe + list splice; values are handed out as shared_ptr<const T>,
// so a value can be evicted while a reader still uses it.
//
// Observability: hits, misses, evictions, invalidations and current size
// are mirrored into the global MetricsRegistry
// (service_cache_{hits,misses,evictions,invalidated}_total{cache=...},
// service_cache_size{cache=...}) and kept as per-instance counters for
// Database::cache_stats().

#ifndef JOINEST_SERVICE_CACHE_H_
#define JOINEST_SERVICE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace joinest {

// What a cache entry holds; part of the key so one cache serves all kinds.
enum class CacheEntryKind {
  kAnalysis = 0,  // AnalyzedQuery + full-join / group / per-rule estimates.
  kPlan,          // OptimizedPlan.
};

struct ServiceCacheKey {
  uint64_t query_fingerprint = 0;
  uint64_t snapshot_version = 0;
  uint64_t options_digest = 0;
  CacheEntryKind kind = CacheEntryKind::kAnalysis;

  bool operator==(const ServiceCacheKey& other) const {
    return query_fingerprint == other.query_fingerprint &&
           snapshot_version == other.snapshot_version &&
           options_digest == other.options_digest && kind == other.kind;
  }
};

struct ServiceCacheKeyHash {
  size_t operator()(const ServiceCacheKey& key) const {
    // The components are already FNV digests; a cheap combine suffices.
    uint64_t h = key.query_fingerprint;
    h = h * 1099511628211ull ^ key.snapshot_version;
    h = h * 1099511628211ull ^ key.options_digest;
    h = h * 1099511628211ull ^ static_cast<uint64_t>(key.kind);
    return static_cast<size_t>(h);
  }
};

// Point-in-time counter snapshot (Database::cache_stats()).
struct ServiceCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t invalidated = 0;
  int64_t size = 0;

  double hit_rate() const {
    const int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

// Type-erased sharded LRU; the Database wraps Lookup/Insert with the
// concrete payload types. Thread-safe.
class ServiceCache {
 public:
  // `capacity` is the total entry budget, split evenly across shards
  // (each shard holds at least one entry). `label` distinguishes multiple
  // databases' series in the metrics registry.
  ServiceCache(int64_t capacity, int shards,
               const std::string& label = "default");

  ServiceCache(const ServiceCache&) = delete;
  ServiceCache& operator=(const ServiceCache&) = delete;

  // Returns the cached value and promotes it to most-recently-used, or
  // nullptr on miss. Counts a hit/miss.
  std::shared_ptr<const void> Lookup(const ServiceCacheKey& key);

  // Inserts (or replaces) the value for `key`, evicting least-recently-used
  // entries of the same shard while over budget.
  void Insert(const ServiceCacheKey& key, std::shared_ptr<const void> value);

  // Drops every entry whose snapshot version precedes `version` (they can
  // never hit again — the version is part of the key). Returns the number
  // of entries dropped.
  int64_t InvalidateBefore(uint64_t version);

  int64_t size() const;
  int64_t capacity() const { return capacity_; }
  ServiceCacheStats Stats() const;

 private:
  struct Entry {
    ServiceCacheKey key;
    std::shared_ptr<const void> value;
  };
  struct Shard {
    Mutex mutex;
    // Front = most recently used.
    std::list<Entry> lru JOINEST_GUARDED_BY(mutex);
    std::unordered_map<ServiceCacheKey, std::list<Entry>::iterator,
                       ServiceCacheKeyHash>
        index JOINEST_GUARDED_BY(mutex);
  };

  Shard& ShardFor(const ServiceCacheKey& key) {
    return *shards_[ServiceCacheKeyHash()(key) % shards_.size()];
  }

  int64_t capacity_ = 0;
  int64_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Per-instance counters (cache_stats()).
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> invalidated_{0};

  // Registry mirrors (process-wide observability).
  Counter& hits_metric_;
  Counter& misses_metric_;
  Counter& evictions_metric_;
  Counter& invalidated_metric_;
  Gauge& size_metric_;
};

}  // namespace joinest

#endif  // JOINEST_SERVICE_CACHE_H_
