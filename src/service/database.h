// The joinest estimation service: a thread-safe `Database` facade over the
// whole pipeline (storage → stats → rewrite → estimator → optimizer →
// executor → obs), plus per-client `Session`s.
//
// Lifecycle:
//
//   auto db = Database::Open(Database::Options()
//                                .set_cache_capacity(4096));   // validated
//   db->LoadTable("S", std::move(table));       // ANALYZE + new snapshot
//   auto session = db->CreateSession(
//       Session::Options().set_preset(AlgorithmPreset::kELS)); // validated
//   auto prepared = session->Prepare("SELECT COUNT(*) FROM S, M "
//                                    "WHERE S.s = M.m");
//   auto estimate = session->Estimate(*prepared);   // cached after 1st call
//   auto plan     = session->Optimize(*prepared);   // cached plan
//   auto result   = session->Execute(*prepared);    // runs the cached plan
//
// Concurrency model:
//   * The catalog is immutable-by-snapshot. Mutations (LoadTable, Analyze,
//     SetTableStats, ImportTables) serialise behind a writer mutex, build a
//     derived snapshot sharing the table payloads, and publish it with an
//     atomic shared_ptr swap. Readers never block: Prepare pins the current
//     snapshot into the PreparedQuery, and every later call on that
//     prepared query (Estimate/Optimize/Execute/ExplainAnalyze) runs
//     against the pinned snapshot — consistent even while ANALYZE
//     republishes concurrently.
//   * Results are memoised in a sharded LRU keyed by (canonical query
//     fingerprint, snapshot version, options digest) — see
//     service/fingerprint.h and service/cache.h. Cache hits return values
//     bit-identical to what the cold path computes.
//   * A Database and its snapshots/caches are fully thread-safe. A Session
//     is a lightweight view (Database pointer + validated options) that is
//     itself safe to share across threads, but the intended pattern is one
//     Session per thread or request.
//
// Error handling: every fallible entry point returns Status/StatusOr.
// Options are validated once, at Open/CreateSession time, so invalid
// combinations (negative restarts, bushy enumeration off-DP, zero sample
// fractions) fail at configure time instead of deep inside enumeration.

#ifndef JOINEST_SERVICE_DATABASE_H_
#define JOINEST_SERVICE_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "estimator/analyzed_query.h"
#include "estimator/features.h"
#include "estimator/feedback_store.h"
#include "estimator/presets.h"
#include "executor/execute.h"
#include "obs/accuracy_monitor.h"
#include "obs/explain_analyze.h"
#include "obs/flight_recorder.h"
#include "optimizer/optimizer.h"
#include "pt/reducer.h"
#include "query/query_spec.h"
#include "service/cache.h"
#include "service/snapshot.h"
#include "storage/analyze.h"

// Published-snapshot storage: std::atomic<std::shared_ptr> when usable.
// GCC 12's implementation (_Sp_atomic) synchronises through a lock bit
// packed into the control-block pointer word — correct, but invisible to
// ThreadSanitizer until the _GLIBCXX_TSAN annotations (GCC PR 101761),
// so sanitizer builds take the mutex fallback instead of suppressing.
#ifndef JOINEST_SERVICE_ATOMIC_SNAPSHOT
#if !defined(__cpp_lib_atomic_shared_ptr) || defined(__SANITIZE_THREAD__)
#define JOINEST_SERVICE_ATOMIC_SNAPSHOT 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define JOINEST_SERVICE_ATOMIC_SNAPSHOT 0
#else
#define JOINEST_SERVICE_ATOMIC_SNAPSHOT 1
#endif
#else
#define JOINEST_SERVICE_ATOMIC_SNAPSHOT 1
#endif
#endif

namespace joinest {

class Database;
class Session;

// Standalone validators for the pre-facade options structs; the facade's
// Options::Validate() compose them, and direct users of the lower layers
// can call them too.
Status ValidateAnalyzeOptions(const AnalyzeOptions& options);
Status ValidateEstimationOptions(const EstimationOptions& options);
Status ValidateOptimizerOptions(const OptimizerOptions& options);

// A parsed query pinned to the catalog snapshot it was resolved against.
// Value type: cheap to copy (the snapshot is shared). Reusable across
// Estimate/Optimize/Execute calls and across threads.
struct PreparedQuery {
  std::string sql;
  QuerySpec spec;
  // Canonical fingerprint of `spec` (service/fingerprint.h).
  uint64_t fingerprint = 0;
  // The snapshot every call on this prepared query runs against.
  std::shared_ptr<const CatalogSnapshot> snapshot;
  // Wall-clock of the Prepare call (parse + resolve + fingerprint), carried
  // so flight-recorder records can report the full latency breakdown.
  double parse_seconds = 0.0;

  uint64_t snapshot_version() const {
    return snapshot ? snapshot->version() : 0;
  }
};

// Result of Session::Estimate. Holds a shared reference to the (possibly
// cached) analysis, which co-owns the snapshot it was computed against.
class EstimateResult {
 public:
  // Full-join estimate under the session's configured rule.
  double rows() const;
  // GROUP BY group-count estimate (== rows() without GROUP BY).
  double groups() const;

  // The same query estimated under each paper preset pipeline (ELS / SM /
  // SSS), computed together on the cold path and cached as one unit.
  struct RuleEstimate {
    std::string rule;
    double rows = 0;
  };
  const std::vector<RuleEstimate>& per_rule() const;

  // Full preliminary-phase output (closure, profiles, traces).
  const AnalyzedQuery& analysis() const;

  bool cache_hit() const { return cache_hit_; }
  uint64_t snapshot_version() const;

 private:
  friend class Session;
  struct Payload;
  std::shared_ptr<const Payload> payload_;
  bool cache_hit_ = false;
};

// Result of Session::Optimize: a shared, immutable optimized plan. The
// underlying PlanNode tree lives in the cache (or in this handle alone on
// a cache bypass) and is co-owned, so it stays valid for the handle's
// lifetime even across evictions and snapshot republishes.
class PlannedQuery {
 public:
  const PlanNode& plan() const;
  double estimated_cost() const;
  double estimated_rows() const;
  const std::vector<int>& join_order() const;
  const std::vector<double>& intermediate_estimates() const;
  // Rendering against the plan's own snapshot and spec.
  std::string ToString() const;

  bool cache_hit() const { return cache_hit_; }
  uint64_t snapshot_version() const;

 private:
  friend class Session;
  struct Payload;
  std::shared_ptr<const Payload> payload_;
  bool cache_hit_ = false;
};

// Result of Session::Execute.
struct ExecuteResult {
  ExecutionResult execution;
  // The plan that ran (cache_hit() tells whether it was memoised).
  PlannedQuery plan;
  // The predicate-transfer reduction that preceded the run (pass rates,
  // per-table survival, timing). Null when the session has predicate
  // transfer off or the query had nothing to transfer.
  std::shared_ptr<const PtResult> predicate_transfer;
};

class Session {
 public:
  class Options {
   public:
    // Estimation preset shorthand (overwrites the estimation options and
    // re-syncs the paper knobs of the feature set; extension features are
    // preserved).
    Options& set_preset(AlgorithmPreset preset);
    // The estimator feature set (estimator/features.h): transitive
    // closure, histogram-join selectivity, runtime selectivities
    // (predicate transfer) and cardinality feedback, as one validated
    // value. THE front door for extension configuration — the facade
    // translates it into the underlying EstimationOptions and store wiring
    // at CreateSession time, so sessions never poke raw EstimationOptions
    // extension fields (enforced by the `estimation-options-pokes` lint).
    Options& set_features(EstimatorFeatures features);
    // Fine-grained estimation knobs. Kept in sync with the optimizer's
    // embedded copy — there is exactly one estimation configuration per
    // session. Prefer set_preset + set_features.
    Options& set_estimation(EstimationOptions estimation);
    // Full optimizer configuration (embeds the estimation options).
    Options& set_optimizer(OptimizerOptions optimizer);
    // Serve Estimate/Optimize from the database's cache (default on).
    // Off, every call recomputes — the benchmark's cold path.
    Options& set_use_cache(bool use_cache);
    // ExplainAnalyze: capture a trace of the run.
    Options& set_capture_trace(bool capture);
    // ExplainAnalyze: run the counting sub-queries that provide exact
    // per-join-level cardinalities (expensive on big data).
    Options& set_with_true_cardinalities(bool with_true);
    // DEPRECATED shim for features().runtime_selectivities — predicate
    // transfer (src/pt/): Execute/ExplainAnalyze run a Bloom-filter
    // semi-join reduction before the plan, scans are restricted to
    // surviving rows, and the observed pass rates feed the database's
    // RuntimeSelectivityStore, which Estimate/Optimize then consult.
    // Default off — the paper-faithful pipeline. New code:
    // set_features(EstimatorFeatures{.runtime_selectivities = true}).
    Options& set_predicate_transfer(bool enabled);

    const EstimationOptions& estimation() const {
      return optimizer_.estimation;
    }
    const OptimizerOptions& optimizer() const { return optimizer_; }
    const EstimatorFeatures& features() const { return features_; }
    bool use_cache() const { return use_cache_; }
    bool capture_trace() const { return capture_trace_; }
    bool with_true_cardinalities() const { return with_true_cardinalities_; }
    // DEPRECATED alias of features().runtime_selectivities.
    bool predicate_transfer() const { return features_.runtime_selectivities; }
    bool feedback() const { return features_.feedback; }

    // Checks every knob combination that can be rejected without a query:
    // restarts/moves >= 1 for randomized enumerators, SA temperature and
    // cooling in range, non-empty method list, non-negative costs, bushy
    // enumeration only under DP, and a coherent feature set.
    Status Validate() const;

   private:
    OptimizerOptions optimizer_;
    // Kept in sync with optimizer_.estimation: set_features pushes its
    // paper knobs into the estimation options; set_preset/set_estimation/
    // set_optimizer pull theirs back out. The extension flags
    // (runtime_selectivities, feedback) live only here — the matching
    // store pointers are injected per call by Session::EffectiveEstimation.
    EstimatorFeatures features_;
    bool use_cache_ = true;
    bool capture_trace_ = true;
    bool with_true_cardinalities_ = true;
  };

  // Parses and resolves `sql` against the database's CURRENT snapshot and
  // pins that snapshot into the result.
  StatusOr<PreparedQuery> Prepare(const std::string& sql) const;

  // Estimation under the session's options; memoised. The cold path also
  // computes the per-preset (ELS/SM/SSS) estimates so one cache entry
  // answers the paper's whole comparison.
  StatusOr<EstimateResult> Estimate(const PreparedQuery& prepared) const;
  // Convenience: Prepare + Estimate.
  StatusOr<EstimateResult> Estimate(const std::string& sql) const;

  // Cost-based optimization under the session's options; memoised.
  StatusOr<PlannedQuery> Optimize(const PreparedQuery& prepared) const;
  StatusOr<PlannedQuery> Optimize(const std::string& sql) const;

  // Optimize (memoised) + execute against the prepared snapshot.
  StatusOr<ExecuteResult> Execute(const PreparedQuery& prepared) const;
  StatusOr<ExecuteResult> Execute(const std::string& sql) const;

  // Optimize (memoised) + EXPLAIN ANALYZE report (obs/explain_analyze.h)
  // under the session's trace/ground-truth knobs. Never cached: it runs
  // the plan by definition.
  StatusOr<ExplainAnalyzeReport> ExplainAnalyze(
      const PreparedQuery& prepared) const;
  StatusOr<ExplainAnalyzeReport> ExplainAnalyze(const std::string& sql) const;

  const Options& options() const { return options_; }
  Database& database() const { return *database_; }

 private:
  friend class Database;
  Session(Database* database, Options options)
      : database_(database), options_(std::move(options)) {}

  // The session's estimation/optimizer options with the database's
  // runtime-selectivity store injected when predicate transfer is on. Used
  // for BOTH the cache-key digest and the computation, so cached results
  // always match what the cold path would produce.
  EstimationOptions EffectiveEstimation() const;
  OptimizerOptions EffectiveOptimizer() const;
  // Runs the reduction for Execute/ExplainAnalyze and records the observed
  // rates. Returns null when transfer is off or the query is single-table.
  StatusOr<std::shared_ptr<const PtResult>> MaybeRunPredicateTransfer(
      const PreparedQuery& prepared) const;

  // The estimation pipeline behind the public Estimate, without the
  // flight-recorder offer: Execute/ExplainAnalyze reuse it to fetch the
  // per-rule estimates for their own records without logging a second,
  // synthetic Estimate record. `seconds` (optional) receives the call's
  // wall-clock.
  StatusOr<EstimateResult> EstimateImpl(const PreparedQuery& prepared,
                                        double* seconds) const;
  // Fills the fields shared by every record (fingerprint, snapshot version,
  // headline rule name, per-rule estimates).
  QueryRecord BaseRecord(const PreparedQuery& prepared,
                         const EstimateResult& estimate) const;

  Database* database_;
  Options options_;
};

class Database {
 public:
  class Options {
   public:
    // Default statistics collection for LoadTable/Analyze.
    Options& set_analyze(AnalyzeOptions analyze);
    // Total cache budget in entries, and the number of LRU shards it is
    // partitioned over.
    Options& set_cache_capacity(int64_t entries);
    Options& set_cache_shards(int shards);
    // Label distinguishing this database's cache series in the metrics
    // registry (tests and multi-tenant processes).
    Options& set_cache_label(std::string label);
    // Flight recorder (obs/flight_recorder.h): capture policy and ring
    // sizing. Disabled by default — paper-faithful sessions stay
    // byte-identical with no recorder in the loop.
    Options& set_recorder(FlightRecorder::Options recorder);
    // Accuracy drift monitor (obs/accuracy_monitor.h). Only consulted for
    // records the recorder captures, so it is inert while the recorder is
    // disabled.
    Options& set_accuracy(AccuracyMonitor::Options accuracy);
    // Capacity (in observations) of the cardinality feedback store shared
    // by this database's feedback-enabled sessions. The store itself is
    // always constructed — it costs nothing until a session with
    // EstimatorFeatures::feedback actually records into it.
    Options& set_feedback_capacity(int64_t observations);

    const AnalyzeOptions& analyze() const { return analyze_; }
    int64_t cache_capacity() const { return cache_capacity_; }
    int cache_shards() const { return cache_shards_; }
    const std::string& cache_label() const { return cache_label_; }
    const FlightRecorder::Options& recorder() const { return recorder_; }
    const AccuracyMonitor::Options& accuracy() const { return accuracy_; }
    int64_t feedback_capacity() const { return feedback_capacity_; }

    Status Validate() const;

   private:
    AnalyzeOptions analyze_;
    int64_t cache_capacity_ = 4096;
    int cache_shards_ = 16;
    std::string cache_label_ = "default";
    FlightRecorder::Options recorder_;
    AccuracyMonitor::Options accuracy_;
    int64_t feedback_capacity_ = 4096;
  };

  // Validates `options` and opens an empty database (snapshot version 0).
  static StatusOr<std::unique_ptr<Database>> Open();
  static StatusOr<std::unique_ptr<Database>> Open(Options options);

  // Direct construction for callers with statically known-good options;
  // CHECK-fails on invalid ones. Prefer Open().
  Database();
  explicit Database(Options options);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ----- Mutations: each builds and atomically publishes a new snapshot.

  // Registers a table, analysing it with the database's default (or the
  // given) AnalyzeOptions.
  Status LoadTable(const std::string& name, Table table);
  Status LoadTable(const std::string& name, Table table,
                   const AnalyzeOptions& options);
  // Registers a table with caller-supplied statistics (what-if catalogs).
  Status LoadTableWithStats(const std::string& name, Table table,
                            TableStats stats);
  // Moves every table of a hand-built catalog in (payloads shared). The
  // bridge for dataset builders that predate the facade
  // (BuildPaperDataset & co.).
  Status ImportTables(Catalog source);

  // Re-collects statistics: the service-layer ANALYZE. One republish for
  // the whole batch.
  Status Analyze();  // All tables, default options.
  Status Analyze(const AnalyzeOptions& options);
  Status AnalyzeTable(const std::string& name, const AnalyzeOptions& options);

  // Replaces one table's statistics (what-if analysis, stats import).
  Status SetTableStats(const std::string& name, TableStats stats);

  // ----- Reads.

  // The current snapshot (never null; version 0 is the empty bootstrap).
  // Lock-free; the returned shared_ptr keeps the snapshot alive.
  std::shared_ptr<const CatalogSnapshot> snapshot() const;

  StatusOr<Session> CreateSession(Session::Options options = {}) const;

  ServiceCacheStats cache_stats() const { return cache_->Stats(); }
  const Options& options() const { return options_; }

  // ----- Flight recorder / accuracy monitor.

  // The query flight recorder. Sessions offer a QueryRecord per
  // Estimate/Execute/ExplainAnalyze call (cache hits included); the
  // configured capture policy decides what is kept.
  FlightRecorder& recorder() const { return *recorder_; }
  // Rolling per-(rule, join-level, snapshot) q-error windows fed from
  // captured executed records; raises estimator_qerror_drift gauges.
  AccuracyMonitor& accuracy_monitor() const { return *accuracy_monitor_; }

  // Captured records, oldest first (most recent last_n when last_n > 0).
  std::vector<QueryRecord> QueryLog(size_t last_n = 0) const {
    return recorder_->Snapshot(last_n);
  }
  // The same records as NDJSON lines / one JSON document
  // (tools/check_querylog.py validates the NDJSON shape).
  std::string QueryLogNdjson(size_t last_n = 0) const {
    return QueryRecordsToNdjson(QueryLog(last_n));
  }
  std::string QueryLogJson(size_t last_n = 0) const {
    return QueryRecordsToJson(QueryLog(last_n));
  }

  // Observed predicate-transfer selectivities, shared by every session of
  // this database (keyed by catalog table name, so observations transfer
  // across queries). Estimation consults it only in sessions with
  // set_predicate_transfer(true).
  RuntimeSelectivityStore& runtime_selectivities() const {
    return *runtime_selectivities_;
  }

  // Observed sub-plan cardinalities (estimator/feedback_store.h), shared by
  // every session of this database and keyed by canonical sub-plan
  // fingerprint (service/fingerprint.h's SubPlanFingerprint). Populated by
  // Execute/ExplainAnalyze in sessions with EstimatorFeatures::feedback;
  // consulted by Estimate/Optimize in those same sessions. Re-ANALYZE
  // (Analyze/AnalyzeTable/SetTableStats) invalidates observations from
  // older snapshots — statistics changed, so remembered actuals may
  // describe data that no longer exists.
  FeedbackStore& feedback_store() const { return *feedback_store_; }

  // The work-stealing pool this database's data-parallel stages (parallel
  // counting, predicate-transfer builds, partitioned ANALYZE) run on. The
  // pool is process-wide — every Database returns the same one — so
  // concurrent sessions and concurrent databases share workers instead of
  // oversubscribing cores. Sized by JOINEST_THREADS/hardware_concurrency.
  ThreadPool& thread_pool() const;

 private:
  friend class Session;

  ServiceCache& cache() const { return *cache_; }

  // Session capture hook: offers `record` to the recorder and, when it is
  // captured and carries an actual cardinality, feeds the accuracy monitor.
  void RecordQuery(const QueryRecord& record) const;

  // Runs `mutate` on a builder seeded from the current snapshot, then
  // publishes the result as the next version and invalidates superseded
  // cache entries. Serialised by writer_mutex_.
  template <typename Fn>
  Status Mutate(Fn&& mutate);

  void Publish(std::shared_ptr<const CatalogSnapshot> snapshot);

  // Ages the runtime-selectivity and feedback stores together after a
  // statistics mutation (Analyze/AnalyzeTable/SetTableStats) republished.
  void AgeObservations();

  Options options_;
  std::unique_ptr<ServiceCache> cache_;
  // shared_ptr: EstimationOptions holds a co-owning reference while cached
  // analyses are alive.
  std::shared_ptr<RuntimeSelectivityStore> runtime_selectivities_;
  std::shared_ptr<FeedbackStore> feedback_store_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::unique_ptr<AccuracyMonitor> accuracy_monitor_;

  // Writers serialise here; readers go straight to snapshot_. Lock order:
  // writer_mutex_ before snapshot_mutex_ (Mutate holds the former across
  // Publish, which briefly takes the latter). Expressed as ACQUIRED_BEFORE
  // only in the fallback branch below — the member does not exist in the
  // atomic configuration.
#if JOINEST_SERVICE_ATOMIC_SNAPSHOT
  Mutex writer_mutex_;
#else
  Mutex writer_mutex_ JOINEST_ACQUIRED_BEFORE(snapshot_mutex_);
#endif
  uint64_t next_version_ JOINEST_GUARDED_BY(writer_mutex_) = 1;

  // Atomically swapped publication point. Guarded by its own tiny mutex
  // when the toolchain lacks a tsan-visible std::atomic<std::shared_ptr>.
#if JOINEST_SERVICE_ATOMIC_SNAPSHOT
  std::atomic<std::shared_ptr<const CatalogSnapshot>> snapshot_;
#else
  mutable Mutex snapshot_mutex_;
  std::shared_ptr<const CatalogSnapshot> snapshot_
      JOINEST_GUARDED_BY(snapshot_mutex_);
#endif
};

}  // namespace joinest

#endif  // JOINEST_SERVICE_DATABASE_H_
