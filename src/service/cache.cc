#include "service/cache.h"

#include <algorithm>

#include "common/check.h"

namespace joinest {

namespace {

MetricLabels CacheLabels(const std::string& label) {
  return {{"cache", label}};
}

}  // namespace

ServiceCache::ServiceCache(int64_t capacity, int shards,
                           const std::string& label)
    : capacity_(capacity),
      hits_metric_(MetricsRegistry::Global().GetCounter(
          "service_cache_hits_total", "estimation service cache hits",
          CacheLabels(label))),
      misses_metric_(MetricsRegistry::Global().GetCounter(
          "service_cache_misses_total", "estimation service cache misses",
          CacheLabels(label))),
      evictions_metric_(MetricsRegistry::Global().GetCounter(
          "service_cache_evictions_total",
          "entries evicted by the LRU policy", CacheLabels(label))),
      invalidated_metric_(MetricsRegistry::Global().GetCounter(
          "service_cache_invalidated_total",
          "entries dropped by snapshot republish", CacheLabels(label))),
      size_metric_(MetricsRegistry::Global().GetGauge(
          "service_cache_size", "entries currently cached",
          CacheLabels(label))) {
  JOINEST_CHECK_GE(capacity, 1);
  JOINEST_CHECK_GE(shards, 1);
  // No point in more shards than entries.
  const int num_shards =
      static_cast<int>(std::min<int64_t>(shards, capacity));
  per_shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const void> ServiceCache::Lookup(const ServiceCacheKey& key) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<const void> value;
  {
    MutexLock lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      value = it->second->value;
    }
  }
  if (value != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    hits_metric_.Increment();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    misses_metric_.Increment();
  }
  return value;
}

void ServiceCache::Insert(const ServiceCacheKey& key,
                          std::shared_ptr<const void> value) {
  JOINEST_CHECK(value != nullptr);
  int64_t evicted = 0;
  // Destroy displaced values outside the shard lock.
  std::vector<std::shared_ptr<const void>> graveyard;
  {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Refresh in place (two threads raced on the same cold key).
      graveyard.push_back(std::move(it->second->value));
      it->second->value = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, std::move(value)});
      shard.index[key] = shard.lru.begin();
      while (static_cast<int64_t>(shard.lru.size()) > per_shard_capacity_) {
        graveyard.push_back(std::move(shard.lru.back().value));
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++evicted;
      }
    }
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    evictions_metric_.Add(evicted);
  }
  size_metric_.Set(static_cast<double>(size()));
}

int64_t ServiceCache::InvalidateBefore(uint64_t version) {
  int64_t dropped = 0;
  std::vector<std::shared_ptr<const void>> graveyard;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->key.snapshot_version < version) {
        graveyard.push_back(std::move(it->value));
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  if (dropped > 0) {
    invalidated_.fetch_add(dropped, std::memory_order_relaxed);
    invalidated_metric_.Add(dropped);
  }
  size_metric_.Set(static_cast<double>(size()));
  return dropped;
}

int64_t ServiceCache::size() const {
  int64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mutex);
    total += static_cast<int64_t>(shard->lru.size());
  }
  return total;
}

ServiceCacheStats ServiceCache::Stats() const {
  ServiceCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidated = invalidated_.load(std::memory_order_relaxed);
  stats.size = size();
  return stats;
}

}  // namespace joinest
