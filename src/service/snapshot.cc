#include "service/snapshot.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "service/fingerprint.h"
#include "types/schema.h"

namespace joinest {

namespace {

uint64_t CatalogStatsDigest(const Catalog& catalog) {
  Fingerprint fp;
  fp.MixInt(catalog.num_tables());
  for (int t = 0; t < catalog.num_tables(); ++t) {
    fp.MixString(catalog.table_name(t));
    const Schema& schema = catalog.table(t).schema();
    fp.MixInt(schema.num_columns());
    for (int c = 0; c < schema.num_columns(); ++c) {
      fp.MixString(schema.column(c).name);
      fp.MixInt(static_cast<int>(schema.column(c).type));
    }
    fp.MixU64(TableStatsDigest(catalog.stats(t)));
  }
  return fp.digest();
}

}  // namespace

CatalogSnapshot::CatalogSnapshot(Catalog catalog, uint64_t version)
    : catalog_(std::move(catalog)), version_(version) {
  // Published snapshots are deeply immutable: the catalog must have been
  // sealed by the builder before it got here.
  JOINEST_DCHECK(catalog_.sealed())
      << "CatalogSnapshot over an unsealed catalog";
  stats_digest_ = CatalogStatsDigest(catalog_);
}

std::string CatalogSnapshot::DebugString() const {
  std::ostringstream os;
  os << "snapshot v" << version_ << " (stats digest " << std::hex
     << stats_digest_ << std::dec << "): " << catalog_.num_tables()
     << " table(s)";
  for (int t = 0; t < catalog_.num_tables(); ++t) {
    os << "\n  " << catalog_.table_name(t) << ": "
       << catalog_.stats(t).row_count << " rows, "
       << catalog_.table(t).num_columns() << " column(s), "
       << StatsSourceName(catalog_.stats(t).source) << " stats";
  }
  return os.str();
}

SnapshotBuilder::SnapshotBuilder(const CatalogSnapshot& base) {
  const Status status = ImportTables(base.catalog());
  JOINEST_CHECK(status.ok()) << status;  // Base snapshots have unique names.
}

StatusOr<int> SnapshotBuilder::AddTable(const std::string& name, Table table,
                                        const AnalyzeOptions& options) {
  return catalog_.AddTable(name, std::move(table), options);
}

StatusOr<int> SnapshotBuilder::AddTableWithStats(const std::string& name,
                                                 Table table,
                                                 TableStats stats) {
  return catalog_.AddTableWithStats(name, std::move(table), std::move(stats));
}

Status SnapshotBuilder::ImportTables(const Catalog& source) {
  for (int t = 0; t < source.num_tables(); ++t) {
    JOINEST_ASSIGN_OR_RETURN(
        [[maybe_unused]] int id,
        catalog_.AddSharedTable(source.table_name(t), source.table_ptr(t),
                                source.stats(t)));
  }
  return Status::OK();
}

Status SnapshotBuilder::Reanalyze(int table_id,
                                  const AnalyzeOptions& options) {
  return catalog_.Reanalyze(table_id, options);
}

Status SnapshotBuilder::ReanalyzeAll(const AnalyzeOptions& options) {
  return catalog_.ReanalyzeAll(options);
}

Status SnapshotBuilder::SetStats(int table_id, TableStats stats) {
  return catalog_.SetStats(table_id, std::move(stats));
}

StatusOr<int> SnapshotBuilder::ResolveTable(const std::string& name) const {
  return catalog_.ResolveTable(name);
}

std::shared_ptr<const CatalogSnapshot> SnapshotBuilder::Build(
    uint64_t version) && {
  catalog_.Seal();
  // make_shared needs a public constructor; the snapshot's is private to
  // this builder, so allocate directly.
  return std::shared_ptr<const CatalogSnapshot>(
      new CatalogSnapshot(std::move(catalog_), version));
}

}  // namespace joinest
