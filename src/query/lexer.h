// Tokenizer for the SQL subset accepted by query/parser.h.

#ifndef JOINEST_QUERY_LEXER_H_
#define JOINEST_QUERY_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace joinest {

enum class TokenKind {
  kIdentifier,  // Bare word, case preserved; keywords matched case-insensitively.
  kInteger,
  kFloat,
  kString,  // 'single quoted'
  kSymbol,  // One of ( ) , . * = <> < <= > >=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // Identifier/symbol text, or string literal body.
  int64_t int_value = 0;
  double float_value = 0;
  int position = 0;  // Byte offset in the input, for error messages.

  // Case-insensitive keyword match for identifiers.
  bool IsKeyword(const std::string& keyword) const;
  bool IsSymbol(const std::string& symbol) const {
    return kind == TokenKind::kSymbol && text == symbol;
  }
};

// Tokenizes `input`, appending a kEnd token. Errors on unterminated strings
// and unexpected characters.
StatusOr<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace joinest

#endif  // JOINEST_QUERY_LEXER_H_
