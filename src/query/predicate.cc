#include "query/predicate.h"

#include <sstream>
#include <unordered_set>

#include "common/logging.h"

namespace joinest {

Predicate Predicate::LocalConst(ColumnRef column, CompareOp op,
                                Value constant) {
  Predicate p;
  p.kind = Kind::kLocalConst;
  p.left = column;
  p.op = op;
  p.constant = std::move(constant);
  return p;
}

Predicate Predicate::LocalColCol(ColumnRef left, CompareOp op,
                                 ColumnRef right) {
  JOINEST_CHECK_EQ(left.table, right.table);
  JOINEST_CHECK(left != right) << "tautological column self-comparison";
  Predicate p;
  p.kind = Kind::kLocalColCol;
  p.left = left;
  p.op = op;
  p.right = right;
  return p;
}

Predicate Predicate::Join(ColumnRef left, ColumnRef right) {
  JOINEST_CHECK_NE(left.table, right.table);
  Predicate p;
  p.kind = Kind::kJoin;
  p.left = left;
  p.op = CompareOp::kEq;
  p.right = right;
  return p;
}

Predicate Predicate::Canonical() const {
  Predicate p = *this;
  if (kind != Kind::kLocalConst && p.right < p.left) {
    std::swap(p.left, p.right);
    p.op = FlipCompareOp(p.op);
  }
  return p;
}

bool Predicate::operator==(const Predicate& other) const {
  if (kind != other.kind || op != other.op || left != other.left) {
    return false;
  }
  switch (kind) {
    case Kind::kLocalConst:
      return constant == other.constant;
    case Kind::kLocalColCol:
    case Kind::kJoin:
      return right == other.right;
  }
  return false;
}

size_t Predicate::Hash() const {
  size_t h = ColumnRefHash()(left);
  auto mix = [&h](size_t v) { h ^= v + 0x9e3779b97f4a7c15ull + (h << 6); };
  mix(static_cast<size_t>(kind));
  mix(static_cast<size_t>(op));
  switch (kind) {
    case Kind::kLocalConst:
      mix(constant.Hash());
      break;
    case Kind::kLocalColCol:
    case Kind::kJoin:
      mix(ColumnRefHash()(right));
      break;
  }
  return h;
}

std::string Predicate::ToString() const {
  std::ostringstream oss;
  oss << "t" << left.table << ".c" << left.column << " "
      << CompareOpSymbol(op) << " ";
  if (kind == Kind::kLocalConst) {
    oss << constant.ToString();
  } else {
    oss << "t" << right.table << ".c" << right.column;
  }
  return oss.str();
}

std::vector<Predicate> DeduplicatePredicates(
    const std::vector<Predicate>& predicates) {
  std::vector<Predicate> result;
  std::unordered_set<Predicate, PredicateHash> seen;
  for (const Predicate& p : predicates) {
    if (seen.insert(p.Canonical()).second) result.push_back(p);
  }
  return result;
}

}  // namespace joinest
