// A reference to a column of one of the tables in a query.
//
// `table` is the query-local table index (position in QuerySpec::tables),
// NOT the catalog table id: the rewrite engine and optimizer key everything
// by query-local index so table subsets pack into bitmasks.

#ifndef JOINEST_QUERY_COLUMN_REF_H_
#define JOINEST_QUERY_COLUMN_REF_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace joinest {

struct ColumnRef {
  int table = -1;   // Query-local table index.
  int column = -1;  // Column index within that table's schema.

  bool operator==(const ColumnRef& other) const {
    return table == other.table && column == other.column;
  }
  bool operator!=(const ColumnRef& other) const { return !(*this == other); }
  // Lexicographic; used to canonicalise predicate operand order.
  bool operator<(const ColumnRef& other) const {
    return table != other.table ? table < other.table : column < other.column;
  }
};

struct ColumnRefHash {
  size_t operator()(const ColumnRef& ref) const {
    return std::hash<int64_t>()((static_cast<int64_t>(ref.table) << 32) ^
                                static_cast<uint32_t>(ref.column));
  }
};

}  // namespace joinest

#endif  // JOINEST_QUERY_COLUMN_REF_H_
