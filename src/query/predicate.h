// Predicates of conjunctive queries.
//
// Following the paper's taxonomy (§2):
//  * local predicate, column vs constant:   R.x op c      (kLocalConst)
//  * local predicate, column vs column:     R.x op R.y    (kLocalColCol)
//  * join predicate:                        R.x = S.y     (kJoin)
//
// Join predicates are equality-only — the paper's estimation framework (and
// its transitive-closure rules) covers equi-joins; non-equality cross-table
// predicates are rejected at query validation.

#ifndef JOINEST_QUERY_PREDICATE_H_
#define JOINEST_QUERY_PREDICATE_H_

#include <string>
#include <vector>

#include "query/column_ref.h"
#include "stats/histogram.h"
#include "types/value.h"

namespace joinest {

struct Predicate {
  enum class Kind { kLocalConst, kLocalColCol, kJoin };

  Kind kind = Kind::kLocalConst;
  ColumnRef left;
  CompareOp op = CompareOp::kEq;
  // kLocalColCol / kJoin only.
  ColumnRef right;
  // kLocalConst only.
  Value constant;

  static Predicate LocalConst(ColumnRef column, CompareOp op, Value constant);
  static Predicate LocalColCol(ColumnRef left, CompareOp op, ColumnRef right);
  static Predicate Join(ColumnRef left, ColumnRef right);

  bool is_equality() const { return op == CompareOp::kEq; }

  // Canonical form for deduplication: column-column predicates order their
  // operands (flipping the comparison), so `R1.x = R2.y` and `R2.y = R1.x`
  // compare equal after canonicalisation.
  Predicate Canonical() const;

  bool operator==(const Predicate& other) const;

  size_t Hash() const;

  // Uses table aliases t0, t1, ... and raw column indexes; the pretty
  // variant taking names lives in query_spec.h where the catalog is known.
  std::string ToString() const;
};

struct PredicateHash {
  size_t operator()(const Predicate& p) const { return p.Hash(); }
};

// Removes duplicates (modulo canonicalisation), preserving first-seen order.
// Implements step 1 of Algorithm ELS ("remove any predicate that is
// identical to another predicate").
std::vector<Predicate> DeduplicatePredicates(
    const std::vector<Predicate>& predicates);

}  // namespace joinest

#endif  // JOINEST_QUERY_PREDICATE_H_
