#include "query/lexer.h"

#include <cctype>
#include <cstdlib>

namespace joinest {

bool Token::IsKeyword(const std::string& keyword) const {
  if (kind != TokenKind::kIdentifier || text.size() != keyword.size()) {
    return false;
  }
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return true;
}

StatusOr<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      token.kind = TokenKind::kIdentifier;
      token.text = input.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i + 1;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.' || input[j] == 'e' || input[j] == 'E' ||
                       ((input[j] == '+' || input[j] == '-') &&
                        (input[j - 1] == 'e' || input[j - 1] == 'E')))) {
        if (input[j] == '.' || input[j] == 'e' || input[j] == 'E') {
          is_float = true;
        }
        ++j;
      }
      const std::string text = input.substr(i, j - i);
      if (is_float) {
        token.kind = TokenKind::kFloat;
        token.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        token.kind = TokenKind::kInteger;
        token.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      token.text = text;
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string body;
      while (j < n && input[j] != '\'') body += input[j++];
      if (j >= n) {
        return InvalidArgument("unterminated string literal at offset " +
                               std::to_string(i));
      }
      token.kind = TokenKind::kString;
      token.text = body;
      i = j + 1;
    } else if (c == '<') {
      token.kind = TokenKind::kSymbol;
      if (i + 1 < n && input[i + 1] == '=') {
        token.text = "<=";
        i += 2;
      } else if (i + 1 < n && input[i + 1] == '>') {
        token.text = "<>";
        i += 2;
      } else {
        token.text = "<";
        ++i;
      }
    } else if (c == '>') {
      token.kind = TokenKind::kSymbol;
      if (i + 1 < n && input[i + 1] == '=') {
        token.text = ">=";
        i += 2;
      } else {
        token.text = ">";
        ++i;
      }
    } else if (c == '!' && i + 1 < n && input[i + 1] == '=') {
      token.kind = TokenKind::kSymbol;
      token.text = "<>";  // Normalise != to <>.
      i += 2;
    } else if (c == '(' || c == ')' || c == ',' || c == '.' || c == '*' ||
               c == '=') {
      token.kind = TokenKind::kSymbol;
      token.text = std::string(1, c);
      ++i;
    } else {
      return InvalidArgument(std::string("unexpected character '") + c +
                             "' at offset " + std::to_string(i));
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = static_cast<int>(n);
  tokens.push_back(end);
  return tokens;
}

}  // namespace joinest
