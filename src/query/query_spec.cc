#include "query/query_spec.h"

#include <sstream>

#include "common/logging.h"

namespace joinest {

StatusOr<int> QuerySpec::AddTable(const Catalog& catalog,
                                  const std::string& name,
                                  const std::string& alias) {
  JOINEST_ASSIGN_OR_RETURN(int catalog_id, catalog.ResolveTable(name));
  const std::string effective_alias = alias.empty() ? name : alias;
  for (const TableRef& ref : tables) {
    if (ref.alias == effective_alias) {
      return AlreadyExists("duplicate table alias '" + effective_alias + "'");
    }
  }
  tables.push_back(TableRef{catalog_id, effective_alias});
  return num_tables() - 1;
}

StatusOr<ColumnRef> QuerySpec::ResolveColumn(const Catalog& catalog,
                                             const std::string& alias,
                                             const std::string& column) const {
  if (!alias.empty()) {
    for (int t = 0; t < num_tables(); ++t) {
      if (tables[t].alias != alias) continue;
      JOINEST_ASSIGN_OR_RETURN(
          int col,
          catalog.table(tables[t].catalog_id).schema().ResolveColumn(column));
      return ColumnRef{t, col};
    }
    return NotFound("no table aliased '" + alias + "' in query");
  }
  // Unqualified: must match exactly one table's schema.
  ColumnRef found{-1, -1};
  for (int t = 0; t < num_tables(); ++t) {
    const int col =
        catalog.table(tables[t].catalog_id).schema().FindColumn(column);
    if (col < 0) continue;
    if (found.table >= 0) {
      return InvalidArgument("ambiguous column '" + column + "'");
    }
    found = ColumnRef{t, col};
  }
  if (found.table < 0) return NotFound("no column named '" + column + "'");
  return found;
}

Status QuerySpec::Validate(const Catalog& catalog) const {
  if (tables.empty()) return InvalidArgument("query has no tables");
  for (const TableRef& ref : tables) {
    if (ref.catalog_id < 0 || ref.catalog_id >= catalog.num_tables()) {
      return InvalidArgument("table ref out of range");
    }
  }
  auto check_column = [&](ColumnRef ref) -> Status {
    if (ref.table < 0 || ref.table >= num_tables()) {
      return InvalidArgument("column ref names unknown table index " +
                             std::to_string(ref.table));
    }
    const Schema& schema = catalog.table(tables[ref.table].catalog_id).schema();
    if (ref.column < 0 || ref.column >= schema.num_columns()) {
      return InvalidArgument("column index out of range");
    }
    return Status::OK();
  };
  for (const Predicate& p : predicates) {
    JOINEST_RETURN_IF_ERROR(check_column(p.left));
    switch (p.kind) {
      case Predicate::Kind::kLocalConst:
        break;
      case Predicate::Kind::kLocalColCol:
        JOINEST_RETURN_IF_ERROR(check_column(p.right));
        if (p.right.table != p.left.table) {
          return InvalidArgument("local col-col predicate crosses tables: " +
                                 p.ToString());
        }
        break;
      case Predicate::Kind::kJoin:
        JOINEST_RETURN_IF_ERROR(check_column(p.right));
        if (p.right.table == p.left.table) {
          return InvalidArgument("join predicate within one table: " +
                                 p.ToString());
        }
        if (p.op != CompareOp::kEq) {
          return Unimplemented("non-equality join predicates");
        }
        break;
    }
  }
  for (const ColumnRef& ref : select) JOINEST_RETURN_IF_ERROR(check_column(ref));
  if (!count_star && select.empty()) {
    return InvalidArgument("empty select list");
  }
  for (const ColumnRef& ref : group_by) {
    JOINEST_RETURN_IF_ERROR(check_column(ref));
  }
  if (!group_by.empty() && !count_star) {
    return Unimplemented("GROUP BY requires SELECT COUNT(*)");
  }
  return Status::OK();
}

std::string QuerySpec::ColumnToString(const Catalog& catalog,
                                      ColumnRef ref) const {
  JOINEST_CHECK_GE(ref.table, 0);
  JOINEST_CHECK_LT(ref.table, num_tables());
  const TableRef& table = tables[ref.table];
  return table.alias + "." +
         catalog.table(table.catalog_id).schema().column(ref.column).name;
}

std::string QuerySpec::PredicateToString(const Catalog& catalog,
                                         const Predicate& predicate) const {
  std::ostringstream oss;
  oss << ColumnToString(catalog, predicate.left) << " "
      << CompareOpSymbol(predicate.op) << " ";
  if (predicate.kind == Predicate::Kind::kLocalConst) {
    oss << predicate.constant.ToString();
  } else {
    oss << ColumnToString(catalog, predicate.right);
  }
  return oss.str();
}

std::string QuerySpec::ToString(const Catalog& catalog) const {
  std::ostringstream oss;
  oss << "SELECT ";
  if (count_star) {
    oss << "COUNT(*)";
  } else {
    for (size_t i = 0; i < select.size(); ++i) {
      if (i > 0) oss << ", ";
      oss << ColumnToString(catalog, select[i]);
    }
  }
  oss << " FROM ";
  for (int t = 0; t < num_tables(); ++t) {
    if (t > 0) oss << ", ";
    oss << catalog.table_name(tables[t].catalog_id);
    if (tables[t].alias != catalog.table_name(tables[t].catalog_id)) {
      oss << " " << tables[t].alias;
    }
  }
  if (!predicates.empty()) {
    oss << " WHERE ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i > 0) oss << " AND ";
      oss << PredicateToString(catalog, predicates[i]);
    }
  }
  if (!group_by.empty()) {
    oss << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) oss << ", ";
      oss << ColumnToString(catalog, group_by[i]);
    }
  }
  return oss.str();
}

}  // namespace joinest
