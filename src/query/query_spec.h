// A resolved conjunctive select-project-join query.

#ifndef JOINEST_QUERY_QUERY_SPEC_H_
#define JOINEST_QUERY_QUERY_SPEC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/predicate.h"
#include "storage/catalog.h"

namespace joinest {

// One table occurrence in the FROM list.
struct TableRef {
  int catalog_id = -1;  // Id in the Catalog.
  std::string alias;    // Defaults to the table name.
};

struct QuerySpec {
  std::vector<TableRef> tables;
  // Conjunction of predicates; column refs use query-local table indexes.
  std::vector<Predicate> predicates;
  // True for SELECT COUNT(*); otherwise `select` lists the projection.
  bool count_star = false;
  std::vector<ColumnRef> select;
  // Optional GROUP BY columns (with count_star: one output row per group,
  // the group key followed by its count).
  std::vector<ColumnRef> group_by;

  int num_tables() const { return static_cast<int>(tables.size()); }

  // Convenience for hand-built queries: appends the named catalog table and
  // returns its query-local index.
  StatusOr<int> AddTable(const Catalog& catalog, const std::string& name,
                         const std::string& alias = "");

  // Resolves "alias.column" against this spec.
  StatusOr<ColumnRef> ResolveColumn(const Catalog& catalog,
                                    const std::string& alias,
                                    const std::string& column) const;

  // Checks internal consistency: table indexes in range, column indexes
  // valid, join predicates cross tables, equality-only joins.
  Status Validate(const Catalog& catalog) const;

  // Human-readable rendering with real table aliases and column names.
  std::string ToString(const Catalog& catalog) const;
  std::string PredicateToString(const Catalog& catalog,
                                const Predicate& predicate) const;
  std::string ColumnToString(const Catalog& catalog, ColumnRef ref) const;
};

}  // namespace joinest

#endif  // JOINEST_QUERY_QUERY_SPEC_H_
