#include "query/parser.h"

#include <optional>
#include <utility>

#include "obs/trace.h"
#include "query/lexer.h"

namespace joinest {

namespace {

// Either a column reference or a literal; the two operand shapes of a
// conjunct.
struct Operand {
  std::optional<ColumnRef> column;
  std::optional<Value> literal;
};

class Parser {
 public:
  Parser(const Catalog& catalog, std::vector<Token> tokens)
      : catalog_(catalog), tokens_(std::move(tokens)) {}

  StatusOr<QuerySpec> Parse() {
    QuerySpec spec;
    JOINEST_RETURN_IF_ERROR(ExpectKeyword("SELECT"));

    // Select list: COUNT(*) or column list. The select list may reference
    // tables declared later in FROM, so record it textually and resolve
    // after FROM is parsed.
    bool count_star = false;
    std::vector<std::pair<std::string, std::string>> select_columns;
    if (Peek().IsKeyword("COUNT")) {
      Advance();
      JOINEST_RETURN_IF_ERROR(ExpectSymbol("("));
      JOINEST_RETURN_IF_ERROR(ExpectSymbol("*"));
      JOINEST_RETURN_IF_ERROR(ExpectSymbol(")"));
      count_star = true;
    } else {
      while (true) {
        JOINEST_ASSIGN_OR_RETURN(auto name, ParseColumnName());
        select_columns.push_back(std::move(name));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }

    JOINEST_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return ErrorAt(Peek(), "expected table name");
      }
      const std::string table_name = Peek().text;
      Advance();
      std::string alias;
      if (Peek().IsKeyword("AS")) {
        Advance();
        if (Peek().kind != TokenKind::kIdentifier) {
          return ErrorAt(Peek(), "expected alias after AS");
        }
      }
      if (Peek().kind == TokenKind::kIdentifier && !Peek().IsKeyword("WHERE") &&
          !Peek().IsKeyword("AND")) {
        alias = Peek().text;
        Advance();
      }
      JOINEST_ASSIGN_OR_RETURN([[maybe_unused]] int index,
                               spec.AddTable(catalog_, table_name, alias));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }

    spec.count_star = count_star;
    for (const auto& [alias, column] : select_columns) {
      JOINEST_ASSIGN_OR_RETURN(ColumnRef ref,
                               spec.ResolveColumn(catalog_, alias, column));
      spec.select.push_back(ref);
    }

    if (Peek().IsKeyword("WHERE")) {
      Advance();
      while (true) {
        JOINEST_RETURN_IF_ERROR(ParseConjunct(spec));
        if (Peek().IsKeyword("AND")) {
          Advance();
          continue;
        }
        if (Peek().IsKeyword("OR")) {
          return ErrorAt(Peek(),
                         "disjunctions are not supported (the paper defers "
                         "them to future work)");
        }
        break;
      }
    }

    if (Peek().IsKeyword("GROUP")) {
      Advance();
      JOINEST_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        JOINEST_ASSIGN_OR_RETURN(auto name, ParseColumnName());
        JOINEST_ASSIGN_OR_RETURN(
            ColumnRef ref,
            spec.ResolveColumn(catalog_, name.first, name.second));
        spec.group_by.push_back(ref);
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }

    if (Peek().kind != TokenKind::kEnd) {
      return ErrorAt(Peek(), "unexpected trailing input");
    }
    JOINEST_RETURN_IF_ERROR(spec.Validate(catalog_));
    return spec;
  }

 private:
  const Token& Peek(int lookahead = 0) const {
    const size_t index =
        std::min(position_ + lookahead, tokens_.size() - 1);
    return tokens_[index];
  }
  void Advance() {
    if (position_ + 1 < tokens_.size()) ++position_;
  }

  Status ErrorAt(const Token& token, const std::string& message) const {
    return InvalidArgument(message + " at offset " +
                           std::to_string(token.position) +
                           (token.text.empty() ? "" : " near '" + token.text +
                                                          "'"));
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (!Peek().IsKeyword(keyword)) {
      return ErrorAt(Peek(), "expected " + keyword);
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const std::string& symbol) {
    if (!Peek().IsSymbol(symbol)) {
      return ErrorAt(Peek(), "expected '" + symbol + "'");
    }
    Advance();
    return Status::OK();
  }

  // Parses `ident` or `ident.ident` into (alias, column) where alias may be
  // empty.
  StatusOr<std::pair<std::string, std::string>> ParseColumnName() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorAt(Peek(), "expected column name");
    }
    std::string first = Peek().text;
    Advance();
    if (Peek().IsSymbol(".")) {
      Advance();
      if (Peek().kind != TokenKind::kIdentifier) {
        return ErrorAt(Peek(), "expected column name after '.'");
      }
      std::string second = Peek().text;
      Advance();
      return std::make_pair(std::move(first), std::move(second));
    }
    return std::make_pair(std::string(), std::move(first));
  }

  StatusOr<Operand> ParseOperand(const QuerySpec& spec) {
    Operand operand;
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kInteger:
        operand.literal = Value(token.int_value);
        Advance();
        return operand;
      case TokenKind::kFloat:
        operand.literal = Value(token.float_value);
        Advance();
        return operand;
      case TokenKind::kString:
        operand.literal = Value(token.text);
        Advance();
        return operand;
      case TokenKind::kIdentifier: {
        if (token.IsKeyword("NOT")) {
          return ErrorAt(token, "NOT is not supported");
        }
        JOINEST_ASSIGN_OR_RETURN(auto name, ParseColumnName());
        JOINEST_ASSIGN_OR_RETURN(
            ColumnRef ref,
            spec.ResolveColumn(catalog_, name.first, name.second));
        operand.column = ref;
        return operand;
      }
      default:
        return ErrorAt(token, "expected column or literal");
    }
  }

  StatusOr<CompareOp> ParseCompareOp() {
    const Token& token = Peek();
    if (token.kind != TokenKind::kSymbol) {
      return ErrorAt(token, "expected comparison operator");
    }
    CompareOp op;
    if (token.text == "=") {
      op = CompareOp::kEq;
    } else if (token.text == "<>") {
      op = CompareOp::kNe;
    } else if (token.text == "<") {
      op = CompareOp::kLt;
    } else if (token.text == "<=") {
      op = CompareOp::kLe;
    } else if (token.text == ">") {
      op = CompareOp::kGt;
    } else if (token.text == ">=") {
      op = CompareOp::kGe;
    } else {
      return ErrorAt(token, "expected comparison operator");
    }
    Advance();
    return op;
  }

  TypeKind ColumnType(const QuerySpec& spec, ColumnRef ref) const {
    return catalog_.table(spec.tables[ref.table].catalog_id)
        .schema()
        .column(ref.column)
        .type;
  }

  // Comparability is by type class: the two numeric types compare with each
  // other, strings only with strings. Enforced at parse time so a type
  // mismatch is a clean error here rather than a CHECK failure deep in
  // selectivity estimation or execution.
  static bool Comparable(TypeKind a, TypeKind b) {
    return (a == TypeKind::kString) == (b == TypeKind::kString);
  }

  Status CheckConstComparable(const QuerySpec& spec, ColumnRef column,
                              const Value& literal) {
    const TypeKind column_type = ColumnType(spec, column);
    if (!Comparable(column_type, literal.type())) {
      return InvalidArgument(
          std::string("cannot compare ") + TypeKindName(column_type) +
          " column with " + TypeKindName(literal.type()) + " literal");
    }
    return Status::OK();
  }

  Status ParseConjunct(QuerySpec& spec) {
    // Parenthesised conjunct.
    if (Peek().IsSymbol("(")) {
      Advance();
      JOINEST_RETURN_IF_ERROR(ParseConjunct(spec));
      return ExpectSymbol(")");
    }
    JOINEST_ASSIGN_OR_RETURN(Operand left, ParseOperand(spec));
    // column BETWEEN literal AND literal.
    if (Peek().IsKeyword("BETWEEN")) {
      Advance();
      if (!left.column.has_value()) {
        return ErrorAt(Peek(), "BETWEEN needs a column on the left");
      }
      JOINEST_ASSIGN_OR_RETURN(Operand lo, ParseOperand(spec));
      JOINEST_RETURN_IF_ERROR(ExpectKeyword("AND"));
      JOINEST_ASSIGN_OR_RETURN(Operand hi, ParseOperand(spec));
      if (!lo.literal.has_value() || !hi.literal.has_value()) {
        return InvalidArgument("BETWEEN bounds must be literals");
      }
      JOINEST_RETURN_IF_ERROR(
          CheckConstComparable(spec, *left.column, *lo.literal));
      JOINEST_RETURN_IF_ERROR(
          CheckConstComparable(spec, *left.column, *hi.literal));
      spec.predicates.push_back(
          Predicate::LocalConst(*left.column, CompareOp::kGe, *lo.literal));
      spec.predicates.push_back(
          Predicate::LocalConst(*left.column, CompareOp::kLe, *hi.literal));
      return Status::OK();
    }
    JOINEST_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp());
    JOINEST_ASSIGN_OR_RETURN(Operand right, ParseOperand(spec));

    if (left.literal.has_value() && right.literal.has_value()) {
      return InvalidArgument("constant-constant comparison is not a predicate");
    }
    // Normalise `literal op column` to `column flipped-op literal`.
    if (left.literal.has_value()) {
      std::swap(left, right);
      op = FlipCompareOp(op);
    }
    if (right.literal.has_value()) {
      JOINEST_RETURN_IF_ERROR(
          CheckConstComparable(spec, *left.column, *right.literal));
      spec.predicates.push_back(
          Predicate::LocalConst(*left.column, op, *right.literal));
      return Status::OK();
    }
    // Column-column.
    const ColumnRef a = *left.column;
    const ColumnRef b = *right.column;
    if (!Comparable(ColumnType(spec, a), ColumnType(spec, b))) {
      return InvalidArgument(
          std::string("cannot compare ") + TypeKindName(ColumnType(spec, a)) +
          " column with " + TypeKindName(ColumnType(spec, b)) + " column");
    }
    if (a.table == b.table) {
      if (a == b) {
        return InvalidArgument("column compared with itself");
      }
      spec.predicates.push_back(Predicate::LocalColCol(a, op, b));
      return Status::OK();
    }
    if (op != CompareOp::kEq) {
      return Unimplemented("non-equality join predicates");
    }
    spec.predicates.push_back(Predicate::Join(a, b));
    return Status::OK();
  }

  const Catalog& catalog_;
  std::vector<Token> tokens_;
  size_t position_ = 0;
};

}  // namespace

StatusOr<QuerySpec> ParseQuery(const Catalog& catalog,
                               const std::string& sql) {
  Span span("query::parse", "bytes", static_cast<int64_t>(sql.size()));
  JOINEST_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(catalog, std::move(tokens));
  return parser.Parse();
}

}  // namespace joinest
