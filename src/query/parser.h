// Parser for the conjunctive SPJ SQL subset the paper works with.
//
// Grammar (keywords case-insensitive):
//
//   query      := SELECT select FROM tables [WHERE conjunct (AND conjunct)*]
//                 [GROUP BY column (, column)*]
//   select     := COUNT ( * ) | column (, column)*
//   tables     := table (, table)*
//   table      := identifier [[AS] identifier]       -- optional alias
//   conjunct   := ( conjunct ) | operand cmp operand
//               | column BETWEEN literal AND literal
//   cmp        := = | <> | < | <= | > | >=
//   operand    := column | literal
//   column     := identifier | identifier . identifier
//   literal    := integer | float | 'string'
//
// BETWEEN desugars to the two inclusive range predicates.
//
// Everything the paper defers — disjunction (OR), nesting, NOT, arithmetic —
// is rejected with a clear error. Constant-constant conjuncts are rejected
// too (they are either tautologies or contradictions, not predicates).

#ifndef JOINEST_QUERY_PARSER_H_
#define JOINEST_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/query_spec.h"
#include "storage/catalog.h"

namespace joinest {

StatusOr<QuerySpec> ParseQuery(const Catalog& catalog, const std::string& sql);

}  // namespace joinest

#endif  // JOINEST_QUERY_PARSER_H_
