// Runtime value representation.
//
// joinest tables hold typed columns of Value. The estimation algorithms
// themselves only need value equality and ordering (for equality and range
// predicates); the executor additionally hashes values for hash joins.

#ifndef JOINEST_TYPES_VALUE_H_
#define JOINEST_TYPES_VALUE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>

namespace joinest {

enum class TypeKind {
  kInt64 = 0,
  kDouble,
  kString,
};

const char* TypeKindName(TypeKind kind);

// A dynamically typed scalar. NULLs are intentionally unsupported: the paper
// works with NOT NULL join/predicate columns, and supporting three-valued
// logic would complicate every comparison for no reproduction value.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  TypeKind type() const { return static_cast<TypeKind>(data_.index()); }

  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  // Unchecked accessors for the executor's specialized kernels, which prove
  // the type once per query shape (from the table schema, at CompilePlan
  // time) instead of per row. Undefined when the variant holds another
  // alternative; the kernels only call these on columns whose schema type
  // they were specialized for.
  int64_t int64_unchecked() const { return *std::get_if<int64_t>(&data_); }
  double double_unchecked() const { return *std::get_if<double>(&data_); }
  const std::string& string_unchecked() const {
    return *std::get_if<std::string>(&data_);
  }

  // In-place stores for kernel emit loops: a plain variant assignment, but
  // named so call sites read as the deliberate fast path. Cheap when the
  // slot already holds the same alternative (the steady state of pooled
  // batch rows).
  void StoreInt64(int64_t v) { data_ = v; }
  void StoreDouble(double v) { data_ = v; }

  // Numeric view: int64 widened to double; CHECK-fails for strings.
  double ToNumeric() const;

  // Canonical integer view for hash keys: the int64 itself, or a double
  // that holds an exactly representable in-range integer (so 3.0 and 3
  // produce the same key, matching operator=='s numeric comparison).
  // nullopt for strings, fractional doubles, and doubles outside int64
  // range.
  std::optional<int64_t> AsCanonicalInt64() const;

  // The value with integral in-range doubles collapsed to int64, so that
  // numerically equal keys of mixed numeric type canonicalise to one
  // representation. Other values pass through unchanged.
  Value CanonicalKey() const;

  std::string ToString() const;

  // Comparisons require identical types (CHECK-enforced), except that int64
  // and double compare numerically against each other.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const;
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return other <= *this; }

  size_t Hash() const;

 private:
  std::variant<int64_t, double, std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace joinest

#endif  // JOINEST_TYPES_VALUE_H_
