// Table schemas: named, typed columns.

#ifndef JOINEST_TYPES_SCHEMA_H_
#define JOINEST_TYPES_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace joinest {

struct ColumnDef {
  std::string name;
  TypeKind type = TypeKind::kInt64;
};

// An ordered list of column definitions with unique names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const;
  const std::vector<ColumnDef>& columns() const { return columns_; }

  // Index of the named column, or -1 if absent.
  int FindColumn(const std::string& name) const;

  // Like FindColumn but returns an error naming the missing column.
  StatusOr<int> ResolveColumn(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace joinest

#endif  // JOINEST_TYPES_SCHEMA_H_
