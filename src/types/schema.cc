#include "types/schema.h"

#include <unordered_set>

#include "common/logging.h"

namespace joinest {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  std::unordered_set<std::string> seen;
  for (const ColumnDef& col : columns_) {
    JOINEST_CHECK(seen.insert(col.name).second)
        << "duplicate column name: " << col.name;
  }
}

const ColumnDef& Schema::column(int i) const {
  JOINEST_CHECK_GE(i, 0);
  JOINEST_CHECK_LT(i, num_columns());
  return columns_[i];
}

int Schema::FindColumn(const std::string& name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return -1;
}

StatusOr<int> Schema::ResolveColumn(const std::string& name) const {
  const int index = FindColumn(name);
  if (index < 0) return NotFound("no column named '" + name + "'");
  return index;
}

std::string Schema::ToString() const {
  std::string result = "(";
  for (int i = 0; i < num_columns(); ++i) {
    if (i > 0) result += ", ";
    result += columns_[i].name;
    result += " ";
    result += TypeKindName(columns_[i].type);
  }
  result += ")";
  return result;
}

}  // namespace joinest
