#include "types/value.h"

#include <ostream>

#include "common/logging.h"
#include "common/table_printer.h"

namespace joinest {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt64:
      return "INT64";
    case TypeKind::kDouble:
      return "DOUBLE";
    case TypeKind::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int64_t Value::AsInt64() const {
  JOINEST_CHECK(type() == TypeKind::kInt64) << "not an int64";
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  JOINEST_CHECK(type() == TypeKind::kDouble) << "not a double";
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  JOINEST_CHECK(type() == TypeKind::kString) << "not a string";
  return std::get<std::string>(data_);
}

double Value::ToNumeric() const {
  switch (type()) {
    case TypeKind::kInt64:
      return static_cast<double>(std::get<int64_t>(data_));
    case TypeKind::kDouble:
      return std::get<double>(data_);
    case TypeKind::kString:
      JOINEST_CHECK(false) << "ToNumeric on string value";
  }
  return 0;
}

std::optional<int64_t> Value::AsCanonicalInt64() const {
  switch (type()) {
    case TypeKind::kInt64:
      return std::get<int64_t>(data_);
    case TypeKind::kDouble: {
      const double d = std::get<double>(data_);
      // The range check must precede the cast: casting a double outside
      // int64 range is undefined behaviour. 2^63 is exactly representable
      // as a double, so `d < 2^63` admits every in-range value.
      if (d >= -9223372036854775808.0 && d < 9223372036854775808.0 &&
          d == static_cast<double>(static_cast<int64_t>(d))) {
        return static_cast<int64_t>(d);
      }
      return std::nullopt;
    }
    case TypeKind::kString:
      return std::nullopt;
  }
  return std::nullopt;
}

Value Value::CanonicalKey() const {
  if (type() == TypeKind::kDouble) {
    if (const std::optional<int64_t> i = AsCanonicalInt64()) return Value(*i);
  }
  return *this;
}

std::string Value::ToString() const {
  switch (type()) {
    case TypeKind::kInt64:
      return std::to_string(std::get<int64_t>(data_));
    case TypeKind::kDouble:
      return FormatNumber(std::get<double>(data_));
    case TypeKind::kString:
      return std::get<std::string>(data_);
  }
  return "";
}

namespace {

bool BothNumeric(const Value& a, const Value& b) {
  return a.type() != TypeKind::kString && b.type() != TypeKind::kString;
}

}  // namespace

bool Value::operator==(const Value& other) const {
  if (type() == other.type()) return data_ == other.data_;
  JOINEST_CHECK(BothNumeric(*this, other))
      << "comparing " << TypeKindName(type()) << " with "
      << TypeKindName(other.type());
  return ToNumeric() == other.ToNumeric();
}

bool Value::operator<(const Value& other) const {
  if (type() == other.type()) return data_ < other.data_;
  JOINEST_CHECK(BothNumeric(*this, other))
      << "comparing " << TypeKindName(type()) << " with "
      << TypeKindName(other.type());
  return ToNumeric() < other.ToNumeric();
}

bool Value::operator<=(const Value& other) const {
  return *this < other || *this == other;
}

size_t Value::Hash() const {
  switch (type()) {
    case TypeKind::kInt64: {
      // Mix so that dense key ranges spread across buckets.
      uint64_t x = static_cast<uint64_t>(std::get<int64_t>(data_));
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return static_cast<size_t>(x ^ (x >> 31));
    }
    case TypeKind::kDouble: {
      // Hash doubles that hold in-range integral values identically to the
      // int64, so mixed-type equality is consistent with hashing.
      // AsCanonicalInt64 range-checks before casting; doubles beyond int64
      // range (where the unguarded cast would be UB) fall through to the
      // plain double hash, and can never equal an int64 anyway.
      if (const std::optional<int64_t> i = AsCanonicalInt64()) {
        return Value(*i).Hash();
      }
      return std::hash<double>()(std::get<double>(data_));
    }
    case TypeKind::kString:
      return std::hash<std::string>()(std::get<std::string>(data_));
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace joinest
