#include "common/status.h"

namespace joinest {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace joinest
