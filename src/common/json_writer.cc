#include "common/json_writer.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

namespace joinest {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::Escape(const std::string& s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out_ += buffer;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  has_element_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  has_element_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(const std::string& key) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  Escape(key);
  out_ += ':';
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  Escape(value);
}

void JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; serialise as null.
    out_ += "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  out_ += buffer;
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  out_ += buffer;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "failed to open " << path << " for writing\n";
    return false;
  }
  out << content;
  out.close();
  if (!out) {
    std::cerr << "failed to write " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace joinest
