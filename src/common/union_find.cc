#include "common/union_find.h"

#include "common/logging.h"

namespace joinest {

UnionFind::UnionFind(int n) : parent_(n), rank_(n, 0), num_sets_(n) {
  for (int i = 0; i < n; ++i) parent_[i] = i;
}

int UnionFind::AddElement() {
  const int id = static_cast<int>(parent_.size());
  parent_.push_back(id);
  rank_.push_back(0);
  ++num_sets_;
  return id;
}

int UnionFind::Find(int x) {
  JOINEST_CHECK_GE(x, 0);
  JOINEST_CHECK_LT(x, size());
  int root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    const int next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(int a, int b) {
  int ra = Find(a);
  int rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --num_sets_;
  return true;
}

}  // namespace joinest
