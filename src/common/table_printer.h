// ASCII table rendering for benchmark and example output.
//
// The §8 bench reproduces the paper's results table verbatim; this helper
// keeps that output aligned and readable without pulling in a formatting
// library.

#ifndef JOINEST_COMMON_TABLE_PRINTER_H_
#define JOINEST_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace joinest {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends a row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> row);

  // Renders with column-aligned cells, a header separator, and `|` borders.
  void Print(std::ostream& os) const;
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double compactly: integers without a decimal point, small or
// large magnitudes in scientific notation (e.g. "4e-08"), otherwise with up
// to `precision` significant digits.
std::string FormatNumber(double value, int precision = 4);

}  // namespace joinest

#endif  // JOINEST_COMMON_TABLE_PRINTER_H_
