// Shared work-stealing thread pool for every data-parallel subsystem.
//
// Before this existed, each parallel path — the morsel-parallel counting
// pipeline (executor/parallel.cc), the partitioned sketch ANALYZE
// (storage/analyze.cc) and the predicate-transfer Bloom build
// (pt/reducer.cc) — spawned its own std::threads per call. Concurrent
// sessions therefore oversubscribed the machine (8 sessions x 8 threads on
// an 8-core box) and paid a thread create/join per query. This pool is the
// single process-wide replacement: subsystems submit tasks, workers run
// them, and concurrent sessions share one fixed set of workers.
//
// Design (Chase–Lev-style stealing, mutex-guarded for tsan cleanliness):
//  * one deque per worker. The owning worker pushes and pops at the BACK
//    (LIFO — freshly spawned subtasks are cache-hot); idle workers steal
//    from the FRONT of a victim's deque (FIFO — the oldest, largest-grained
//    work moves). Each deque is guarded by its own mutex rather than the
//    classic lock-free protocol: tasks here are morsel-sized (thousands of
//    rows), so the lock is noise, and every access is tsan-provable.
//  * external submissions round-robin across the worker deques; a task
//    running on a worker submits to that worker's own deque (locality).
//  * bounded submission: beyond kMaxPendingPerWorker queued tasks per
//    worker the submitting thread runs the task inline instead of queueing
//    — producers cannot outrun the workers without becoming workers.
//  * TaskGroup::Wait() HELPS: the waiting thread executes the group's
//    not-yet-started tasks itself instead of blocking, so nested
//    fork/join (a pool task forking its own TaskGroup) cannot deadlock
//    even on a pool with zero workers.
//
// Sizing: SharedThreadPool() owns NumPoolThreads() - 1 workers — the
// calling thread is the remaining worker (it always helps via TaskGroup),
// so JOINEST_THREADS=1 means zero pool workers and fully inline,
// deterministic execution.
//
// Layering: this lives in common/ and therefore cannot see the metrics
// registry (obs/ sits above common/). Telemetry goes through the
// ThreadPoolObserver hook; obs/pool_obs.{h,cc} installs the registry-backed
// implementation (pool_tasks_total / pool_steals_total / pool_queue_depth
// and per-task trace spans).

#ifndef JOINEST_COMMON_THREAD_POOL_H_
#define JOINEST_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace joinest {

// Process-wide telemetry hook (see obs/pool_obs.h for the registry-backed
// implementation). TaskStarted returns an opaque token handed back to
// TaskFinished — the span the trace layer opens for the task, when tracing
// is active.
class ThreadPoolObserver {
 public:
  virtual ~ThreadPoolObserver() = default;
  // `worker` is the executing worker index (-1: ran inline on a submitter
  // or waiter); `stolen` is true when the task came off another worker's
  // deque.
  virtual void* TaskStarted(int worker, bool stolen) = 0;
  virtual void TaskFinished(int worker, bool stolen, void* token) = 0;
  // Approximate queued-task count, reported at submission.
  virtual void QueueDepth(int64_t depth) = 0;
};

// Installs the process-wide observer. Call once (idempotent installs of the
// same pointer are fine); the observer must outlive every pool. Passing an
// observer while tasks run is safe — the pointer is read with acquire
// semantics per task.
void InstallThreadPoolObserver(ThreadPoolObserver* observer);

class ThreadPool {
 public:
  using Task = std::function<void()>;

  // Beyond this many queued tasks per worker, Submit runs the task inline
  // on the submitting thread (bounded submission).
  static constexpr int64_t kMaxPendingPerWorker = 256;

  // `num_workers` may be 0: every Submit then runs inline — the
  // deterministic JOINEST_THREADS=1 configuration.
  explicit ThreadPool(int num_workers);
  // Completes every pending task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` (or runs it inline when the pool has no workers or the
  // queues are saturated). Never blocks on queue space.
  void Submit(Task task);

  int num_workers() const { return static_cast<int>(workers_.size()); }

  struct Stats {
    int64_t tasks_run = 0;     // Tasks executed by pool workers.
    int64_t tasks_stolen = 0;  // Subset of tasks_run taken from a victim.
    int64_t tasks_inline = 0;  // Tasks run on the submitting thread.
    int64_t pending = 0;       // Currently queued (approximate).
  };
  Stats stats() const;

 private:
  friend class TaskGroup;

  struct WorkerQueue {
    Mutex mu;
    std::deque<Task> tasks JOINEST_GUARDED_BY(mu);
  };

  void WorkerLoop(int index);
  // Pops the back of `index`'s own deque, else steals the front of another
  // worker's. Returns false when every deque is empty.
  bool TryRunOneTask(int index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  Mutex sleep_mu_;
  CondVar sleep_cv_;
  bool stop_ JOINEST_GUARDED_BY(sleep_mu_) = false;

  std::atomic<size_t> next_queue_{0};
  std::atomic<int64_t> pending_{0};
  std::atomic<int64_t> tasks_run_{0};
  std::atomic<int64_t> tasks_stolen_{0};
  std::atomic<int64_t> tasks_inline_{0};
};

// Fork/join over a pool. Run() enqueues; Wait() executes not-yet-started
// tasks of THIS group on the waiting thread until none remain, then blocks
// for the in-flight ones. Safe to use from inside a pool task (nested
// parallelism) and on a pool with zero workers (everything runs in Wait).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool);
  ~TaskGroup();  // Waits if the caller did not.

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> fn);
  void Wait();

 private:
  struct State {
    Mutex mu;
    CondVar cv;
    std::deque<std::function<void()>> unstarted JOINEST_GUARDED_BY(mu);
    // Queued + running tasks of this group.
    int64_t outstanding JOINEST_GUARDED_BY(mu) = 0;
  };

  // Pops one unstarted task and runs it; false when none were queued.
  static bool RunOne(const std::shared_ptr<State>& state);

  ThreadPool& pool_;
  std::shared_ptr<State> state_;
};

// Worker-thread budget for the process: JOINEST_THREADS when set to a
// positive integer (deterministic CI), otherwise hardware_concurrency();
// always at least 1. The executor's NumExecutorThreads() is an alias.
int NumPoolThreads();

// The process-wide pool every subsystem shares, sized NumPoolThreads() - 1
// (the submitting thread is the last worker). Constructed on first use;
// never destroyed (workers park when idle). JOINEST_THREADS is read once,
// at first call.
ThreadPool& SharedThreadPool();

}  // namespace joinest

#endif  // JOINEST_COMMON_THREAD_POOL_H_
