// Deterministic pseudo-random number generation for data generators, tests
// and benchmarks.
//
// Rng wraps xoshiro256++ (fast, well-distributed, reproducible across
// platforms — unlike std::mt19937 distributions, whose output is not
// specified by the standard for std::uniform_int_distribution et al.).
// ZipfDistribution samples ranks 1..n with P(k) ∝ 1/k^theta, the skewed
// distribution the paper cites ([17], [3], [6]) as the important non-uniform
// case for join columns.

#ifndef JOINEST_COMMON_RANDOM_H_
#define JOINEST_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace joinest {

// xoshiro256++ generator. Seeded via SplitMix64 so any 64-bit seed is fine.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform over the full 64-bit range.
  uint64_t Next();

  // Uniform integer in [0, bound), bound > 0. Uses rejection to avoid modulo
  // bias.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive, lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // A uniformly random permutation of {0, 1, ..., n-1}.
  std::vector<int64_t> Permutation(int64_t n);

 private:
  uint64_t state_[4];
};

// Zipf(theta) distribution over ranks {1, ..., n}: P(k) ∝ 1 / k^theta.
// theta == 0 degenerates to uniform. Sampling is O(log n) per draw via
// binary search over the precomputed CDF; construction is O(n).
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t n, double theta);

  // Draws a rank in [1, n].
  int64_t Sample(Rng& rng) const;

  int64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  int64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[k-1] = P(rank <= k)
};

}  // namespace joinest

#endif  // JOINEST_COMMON_RANDOM_H_
