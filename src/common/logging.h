// CHECK macros for internal invariants.
//
// A failed check prints the location, the failed condition, and any streamed
// context, then aborts. These are for programmer errors; user-facing errors
// go through Status (common/status.h).
//
//   JOINEST_CHECK(x > 0) << "x was " << x;

#ifndef JOINEST_COMMON_LOGGING_H_
#define JOINEST_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace joinest {
namespace internal_logging {

// Accumulates a failure message and aborts in the destructor. Used only via
// the JOINEST_CHECK macros below.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Makes the whole streaming chain a void expression so it can sit in the
// false branch of the ternary in JOINEST_CHECK. operator& binds looser than
// operator<<, so all streamed context is collected first.
struct Voidify {
  // Binds both a bare temporary CheckFailure and the lvalue reference
  // returned by its operator<< chain.
  void operator&(const CheckFailure&) {}
};

}  // namespace internal_logging
}  // namespace joinest

#define JOINEST_CHECK(condition)                                    \
  (condition) ? (void)0                                             \
              : ::joinest::internal_logging::Voidify() &            \
                    ::joinest::internal_logging::CheckFailure(      \
                        __FILE__, __LINE__, #condition)

#define JOINEST_CHECK_EQ(a, b) JOINEST_CHECK((a) == (b))
#define JOINEST_CHECK_NE(a, b) JOINEST_CHECK((a) != (b))
#define JOINEST_CHECK_LT(a, b) JOINEST_CHECK((a) < (b))
#define JOINEST_CHECK_LE(a, b) JOINEST_CHECK((a) <= (b))
#define JOINEST_CHECK_GT(a, b) JOINEST_CHECK((a) > (b))
#define JOINEST_CHECK_GE(a, b) JOINEST_CHECK((a) >= (b))

#endif  // JOINEST_COMMON_LOGGING_H_
