// CHECK macros for internal invariants.
//
// A failed check prints the location, the failed condition, and any streamed
// context, then aborts. These are for programmer errors; user-facing errors
// go through Status (common/status.h).
//
//   JOINEST_CHECK(x > 0) << "x was " << x;
//
// Every failure — the always-on JOINEST_CHECK family here and the
// contract-layer JOINEST_DCHECK/JOINEST_CHECK_SELECTIVITY family in
// common/check.h, which expands to JOINEST_CHECK — funnels through the one
// CheckFailure sink (FailCheck in logging.cc). Subsystems can register a
// pre-abort hook there: src/obs/trace.cc uses it to dump the active trace
// buffer, so a failed contract leaves a post-mortem trace behind.

#ifndef JOINEST_COMMON_LOGGING_H_
#define JOINEST_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace joinest {
namespace internal_logging {

// Called with the fully formatted failure message just before the process
// aborts. Must be async-signal-tolerant in spirit: keep it short, don't
// assume unwound stacks. Returns the previously installed hook (nullptr if
// none) so callers can chain.
using CheckFailureHook = void (*)(const char* message);
CheckFailureHook SetCheckFailureHook(CheckFailureHook hook);

// The shared sink: runs the registered hook (if any), prints `message` to
// stderr, and aborts. Out of line so every CHECK site shares one failure
// path and one place to attach post-mortem behaviour.
[[noreturn]] void FailCheck(const std::string& message);

// Accumulates a failure message and hands it to FailCheck in the
// destructor. Used only via the JOINEST_CHECK macros below.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }
  [[noreturn]] ~CheckFailure() { FailCheck(stream_.str()); }
  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Makes the whole streaming chain a void expression so it can sit in the
// false branch of the ternary in JOINEST_CHECK. operator& binds looser than
// operator<<, so all streamed context is collected first.
struct Voidify {
  // Binds both a bare temporary CheckFailure and the lvalue reference
  // returned by its operator<< chain.
  void operator&(const CheckFailure&) {}
};

}  // namespace internal_logging
}  // namespace joinest

#define JOINEST_CHECK(condition)                                    \
  (condition) ? (void)0                                             \
              : ::joinest::internal_logging::Voidify() &            \
                    ::joinest::internal_logging::CheckFailure(      \
                        __FILE__, __LINE__, #condition)

#define JOINEST_CHECK_EQ(a, b) JOINEST_CHECK((a) == (b))
#define JOINEST_CHECK_NE(a, b) JOINEST_CHECK((a) != (b))
#define JOINEST_CHECK_LT(a, b) JOINEST_CHECK((a) < (b))
#define JOINEST_CHECK_LE(a, b) JOINEST_CHECK((a) <= (b))
#define JOINEST_CHECK_GT(a, b) JOINEST_CHECK((a) > (b))
#define JOINEST_CHECK_GE(a, b) JOINEST_CHECK((a) >= (b))

#endif  // JOINEST_COMMON_LOGGING_H_
