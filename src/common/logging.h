// CHECK macros for internal invariants, plus a leveled, rate-limited
// structured logger for non-fatal diagnostics.
//
// A failed check prints the location, the failed condition, and any streamed
// context, then aborts. These are for programmer errors; user-facing errors
// go through Status (common/status.h).
//
//   JOINEST_CHECK(x > 0) << "x was " << x;
//
// Every failure — the always-on JOINEST_CHECK family here and the
// contract-layer JOINEST_DCHECK/JOINEST_CHECK_SELECTIVITY family in
// common/check.h, which expands to JOINEST_CHECK — funnels through the one
// CheckFailure sink (FailCheck in logging.cc). Subsystems can register a
// pre-abort hook there: src/obs/trace.cc uses it to dump the active trace
// buffer, so a failed contract leaves a post-mortem trace behind.
//
// The non-fatal path is JOINEST_LOG: severity-leveled, streamed like a
// CHECK, emitted through a swappable sink (stderr by default):
//
//   JOINEST_LOG(WARN) << "q-error drift on rule " << rule;
//
// Messages below the minimum severity (SetMinLogSeverity, default kInfo)
// cost one relaxed atomic load and never format their operands. For alerts
// that can fire per query, JOINEST_LOG_EVERY_N suppresses all but every
// N-th execution of the site; the emitted line carries a "[+K suppressed]"
// prefix so the dropped volume stays visible:
//
//   JOINEST_LOG_EVERY_N(WARN, 100) << "slow query " << fingerprint;
//
// (JOINEST_LOG_EVERY_N is a statement, not an expression: use it where a
// statement is allowed, which is every place a log line belongs.)

#ifndef JOINEST_COMMON_LOGGING_H_
#define JOINEST_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace joinest {

enum class LogSeverity : int { kInfo = 0, kWarn = 1, kError = 2 };

// "INFO" / "WARN" / "ERROR".
const char* LogSeverityName(LogSeverity severity);

// Where emitted log lines go. The default sink writes
// "SEVERITY file:line] message" to stderr. Returns the previous sink;
// passing nullptr restores the default. Sinks must be thread-safe.
using LogSinkFn = void (*)(LogSeverity severity, const char* file, int line,
                           const std::string& message);
LogSinkFn SetLogSink(LogSinkFn sink);

// Messages strictly below `severity` are discarded without formatting.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

// Process-wide emission statistics, for tests and telemetry bridges
// (common/ cannot depend on the metrics registry in src/obs/).
struct LogStats {
  int64_t emitted[3] = {0, 0, 0};  // Indexed by LogSeverity.
  int64_t suppressed = 0;          // Dropped by JOINEST_LOG_EVERY_N sites.
};
LogStats GetLogStats();

namespace internal_logging {

// Called with the fully formatted failure message just before the process
// aborts. Must be async-signal-tolerant in spirit: keep it short, don't
// assume unwound stacks. Returns the previously installed hook (nullptr if
// none) so callers can chain.
using CheckFailureHook = void (*)(const char* message);
CheckFailureHook SetCheckFailureHook(CheckFailureHook hook);

// The shared sink: runs the registered hook (if any), prints `message` to
// stderr, and aborts. Out of line so every CHECK site shares one failure
// path and one place to attach post-mortem behaviour.
[[noreturn]] void FailCheck(const std::string& message);

// Accumulates a failure message and hands it to FailCheck in the
// destructor. Used only via the JOINEST_CHECK macros below.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }
  [[noreturn]] ~CheckFailure() { FailCheck(stream_.str()); }
  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Makes the whole streaming chain a void expression so it can sit in the
// false branch of the ternary in JOINEST_CHECK. operator& binds looser than
// operator<<, so all streamed context is collected first.
struct Voidify {
  // Binds both a bare temporary CheckFailure and the lvalue reference
  // returned by its operator<< chain.
  void operator&(const CheckFailure&) {}
};

// Accumulates a log line and hands it to the active sink in the destructor.
// Used only via the JOINEST_LOG macros below.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

struct LogVoidify {
  void operator&(const LogMessage&) {}
};

// Per-call-site state for JOINEST_LOG_EVERY_N. Function-local static, so
// each macro expansion gets its own counter; relaxed atomics keep the
// hot suppressed path to one fetch_add.
class LogSiteState {
 public:
  // Returns true on the 1st, (n+1)th, (2n+1)th, ... call. When it returns
  // true it also stages the number of calls suppressed since the last
  // emission (thread-local), which the next LogMessage constructed on this
  // thread picks up and renders as a "[+K suppressed]" prefix.
  bool ShouldLog(int64_t n);

 private:
  std::atomic<int64_t> count_{0};
};

}  // namespace internal_logging
}  // namespace joinest

#define JOINEST_CHECK(condition)                                    \
  (condition) ? (void)0                                             \
              : ::joinest::internal_logging::Voidify() &            \
                    ::joinest::internal_logging::CheckFailure(      \
                        __FILE__, __LINE__, #condition)

#define JOINEST_CHECK_EQ(a, b) JOINEST_CHECK((a) == (b))
#define JOINEST_CHECK_NE(a, b) JOINEST_CHECK((a) != (b))
#define JOINEST_CHECK_LT(a, b) JOINEST_CHECK((a) < (b))
#define JOINEST_CHECK_LE(a, b) JOINEST_CHECK((a) <= (b))
#define JOINEST_CHECK_GT(a, b) JOINEST_CHECK((a) > (b))
#define JOINEST_CHECK_GE(a, b) JOINEST_CHECK((a) >= (b))

// Severity tokens for JOINEST_LOG(severity): INFO / WARN / ERROR.
#define JOINEST_LOG_SEVERITY_INFO ::joinest::LogSeverity::kInfo
#define JOINEST_LOG_SEVERITY_WARN ::joinest::LogSeverity::kWarn
#define JOINEST_LOG_SEVERITY_ERROR ::joinest::LogSeverity::kError

// Streamed operands are not evaluated when the severity is filtered out:
// the ternary short-circuits before the LogMessage (and its << chain) is
// constructed.
#define JOINEST_LOG(severity)                                             \
  (JOINEST_LOG_SEVERITY_##severity < ::joinest::MinLogSeverity())         \
      ? (void)0                                                           \
      : ::joinest::internal_logging::LogVoidify() &                       \
            ::joinest::internal_logging::LogMessage(                      \
                JOINEST_LOG_SEVERITY_##severity, __FILE__, __LINE__)

// Statement-shaped: logs on the 1st, (n+1)th, ... execution of this site,
// counting the rest as suppressed. The outer loop guarantees the body runs
// at most once; the inner loop exists to host the per-site static state.
#define JOINEST_LOG_EVERY_N(severity, n)                                    \
  for (bool joinest_log_once = true; joinest_log_once;                      \
       joinest_log_once = false)                                            \
    for (static ::joinest::internal_logging::LogSiteState joinest_log_site; \
         joinest_log_once && joinest_log_site.ShouldLog(n);                 \
         joinest_log_once = false)                                          \
  JOINEST_LOG(severity)

#endif  // JOINEST_COMMON_LOGGING_H_
