// Runtime contracts for the paper's machine-checkable invariants.
//
// common/logging.h provides the always-on JOINEST_CHECK family for fatal
// programmer errors. This header adds the *contract* layer: debug-only
// assertions for the algebraic invariants the estimation math guarantees —
// selectivities in [0, 1], non-negative cardinalities, the urn-model bound
// d' <= min(d, k), monotone non-increasing effective cardinalities. They are
// dense on hot paths, so they compile out in Release builds.
//
// Controlled by the JOINEST_CONTRACTS preprocessor knob (set from the CMake
// cache variable of the same name):
//
//   JOINEST_CONTRACTS=1  — contracts are live JOINEST_CHECKs (default for
//                          Debug / RelWithDebInfo builds);
//   JOINEST_CONTRACTS=0  — contracts compile to nothing; condition operands
//                          are still type-checked but never evaluated
//                          (default for Release builds).
//
// Macros:
//
//   JOINEST_DCHECK(cond) << "context";     and _EQ/_NE/_LT/_LE/_GT/_GE
//   JOINEST_CHECK_SELECTIVITY(s)           s is finite and in [0, 1]
//   JOINEST_CHECK_CARDINALITY(c)           c is >= 0 and not NaN
//   JOINEST_CHECK_FINITE(x)                x is a finite number
//
// All four support streaming extra context, e.g.
//   JOINEST_CHECK_SELECTIVITY(sel) << "predicate " << p.ToString();

#ifndef JOINEST_COMMON_CHECK_H_
#define JOINEST_COMMON_CHECK_H_

#include <cmath>

#include "common/logging.h"

// CMake normally defines this on the command line; standalone includers get
// assert()-style defaults keyed off NDEBUG.
#ifndef JOINEST_CONTRACTS
#ifdef NDEBUG
#define JOINEST_CONTRACTS 0
#else
#define JOINEST_CONTRACTS 1
#endif
#endif

namespace joinest {
namespace internal_contracts {

// Out-of-line predicate bodies keep the macro expansions small and give the
// checks a single definition to test.
inline bool IsValidSelectivity(double s) {
  return std::isfinite(s) && s >= 0.0 && s <= 1.0;
}

// NaN rejected; +infinity tolerated because a long chain of cartesian
// products can legitimately overflow a double, and the estimator treats
// "absurdly large" as meaningful ("do not run this plan").
inline bool IsValidCardinality(double c) { return !std::isnan(c) && c >= 0.0; }

}  // namespace internal_contracts
}  // namespace joinest

#if JOINEST_CONTRACTS

#define JOINEST_DCHECK(condition) JOINEST_CHECK(condition)

#define JOINEST_CHECK_SELECTIVITY(s)                                        \
  JOINEST_CHECK(::joinest::internal_contracts::IsValidSelectivity((s)))     \
      << "SELECTIVITY contract: expected a finite value in [0, 1], got "    \
      << (s) << " "

#define JOINEST_CHECK_CARDINALITY(c)                                        \
  JOINEST_CHECK(::joinest::internal_contracts::IsValidCardinality((c)))     \
      << "CARDINALITY contract: expected a non-negative non-NaN value, "    \
      << "got " << (c) << " "

#define JOINEST_CHECK_FINITE(x)                                      \
  JOINEST_CHECK(std::isfinite((x)))                                  \
      << "FINITE contract: got " << (x) << " "

#else  // !JOINEST_CONTRACTS

// `true || (...)` keeps every operand compiled (so contract expressions
// cannot rot in Release) while guaranteeing none of them is evaluated.
#define JOINEST_DCHECK(condition) JOINEST_CHECK(true || (condition))
#define JOINEST_CHECK_SELECTIVITY(s) JOINEST_CHECK(true || ((s) > 0))
#define JOINEST_CHECK_CARDINALITY(c) JOINEST_CHECK(true || ((c) > 0))
#define JOINEST_CHECK_FINITE(x) JOINEST_CHECK(true || ((x) > 0))

#endif  // JOINEST_CONTRACTS

#define JOINEST_DCHECK_EQ(a, b) JOINEST_DCHECK((a) == (b))
#define JOINEST_DCHECK_NE(a, b) JOINEST_DCHECK((a) != (b))
#define JOINEST_DCHECK_LT(a, b) JOINEST_DCHECK((a) < (b))
#define JOINEST_DCHECK_LE(a, b) JOINEST_DCHECK((a) <= (b))
#define JOINEST_DCHECK_GT(a, b) JOINEST_DCHECK((a) > (b))
#define JOINEST_DCHECK_GE(a, b) JOINEST_DCHECK((a) >= (b))

#endif  // JOINEST_COMMON_CHECK_H_
