#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace joinest {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& word : state_) word = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  JOINEST_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  JOINEST_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  if (span == UINT64_MAX) return static_cast<int64_t>(Next());
  return lo + static_cast<int64_t>(NextBounded(span + 1));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::vector<int64_t> Rng::Permutation(int64_t n) {
  JOINEST_CHECK_GE(n, 0);
  std::vector<int64_t> result(n);
  for (int64_t i = 0; i < n; ++i) result[i] = i;
  // Fisher-Yates.
  for (int64_t i = n - 1; i > 0; --i) {
    const int64_t j = static_cast<int64_t>(NextBounded(i + 1));
    std::swap(result[i], result[j]);
  }
  return result;
}

ZipfDistribution::ZipfDistribution(int64_t n, double theta)
    : n_(n), theta_(theta), cdf_(n) {
  JOINEST_CHECK_GT(n, 0);
  JOINEST_CHECK_GE(theta, 0.0);
  double total = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    total += std::pow(static_cast<double>(k), -theta);
    cdf_[k - 1] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against rounding leaving the last bin short.
}

int64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

}  // namespace joinest
