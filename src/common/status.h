// Minimal Status / StatusOr error-handling vocabulary.
//
// joinest does not use C++ exceptions. Fallible operations return Status (or
// StatusOr<T> when they produce a value); internal invariant violations use
// the CHECK macros from common/logging.h instead.

#ifndef JOINEST_COMMON_STATUS_H_
#define JOINEST_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "common/logging.h"

namespace joinest {

// Broad error categories. Kept deliberately small; the message carries the
// detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

// Returns a stable human-readable name, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

// A success-or-error result. Cheap to copy on the OK path (no allocation).
// [[nodiscard]]: silently dropping a Status is how error paths rot — every
// ignored return is a compile-time warning (fatal in src/ under
// -DJOINEST_WERROR=ON). Deliberate drops must be `(void)`-cast with a
// reason comment; the `nodiscard-status` lint checker keeps declarations
// annotated.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status OutOfRange(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);

// Either a value of T or an error Status. Accessing the value of an error
// result aborts (CHECK failure).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Intentionally implicit, so `return value;` and `return status;` both work.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    JOINEST_CHECK(!status_.ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    JOINEST_CHECK(ok()) << "StatusOr::value() on error: " << status_;
    return *value_;
  }
  T& value() & {
    JOINEST_CHECK(ok()) << "StatusOr::value() on error: " << status_;
    return *value_;
  }
  T&& value() && {
    JOINEST_CHECK(ok()) << "StatusOr::value() on error: " << status_;
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

// Propagates an error Status from an expression, e.g.:
//   JOINEST_RETURN_IF_ERROR(DoThing());
#define JOINEST_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::joinest::Status _status = (expr);              \
    if (!_status.ok()) return _status;               \
  } while (0)

// Evaluates a StatusOr expression, propagating errors and otherwise binding
// the value, e.g.:
//   JOINEST_ASSIGN_OR_RETURN(auto table, catalog.Find(name));
#define JOINEST_ASSIGN_OR_RETURN(lhs, expr)                       \
  JOINEST_ASSIGN_OR_RETURN_IMPL_(                                 \
      JOINEST_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)
#define JOINEST_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()
#define JOINEST_STATUS_CONCAT_(a, b) JOINEST_STATUS_CONCAT_IMPL_(a, b)
#define JOINEST_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace joinest

#endif  // JOINEST_COMMON_STATUS_H_
