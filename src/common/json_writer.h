// Minimal streaming JSON writer for benchmark result files.
//
// Benchmarks print human tables to stdout; alongside they dump
// machine-readable JSON (BENCH_*.json) so the perf/accuracy trajectory can
// be tracked across commits without parsing table text. The writer handles
// comma placement and escaping; the caller supplies structure:
//
//   JsonWriter json;
//   json.BeginObject();
//   json.Key("results"); json.BeginArray();
//   json.BeginObject(); json.Key("n"); json.Number(4); json.EndObject();
//   json.EndArray();
//   json.EndObject();
//   WriteTextFile("BENCH_foo.json", json.str());

#ifndef JOINEST_COMMON_JSON_WRITER_H_
#define JOINEST_COMMON_JSON_WRITER_H_

#include <string>
#include <vector>

namespace joinest {

class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(const std::string& key);
  void String(const std::string& value);
  void Number(double value);
  void Int(int64_t value);
  void Bool(bool value);

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();
  void Escape(const std::string& s);

  std::string out_;
  // Per open container: true once the first element was written.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

// Writes `content` to `path`, returning false (with a stderr note) on I/O
// failure. Benchmarks treat failure as non-fatal.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace joinest

#endif  // JOINEST_COMMON_JSON_WRITER_H_
