#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace joinest {
namespace internal_logging {

namespace {
std::atomic<CheckFailureHook> g_hook{nullptr};
}  // namespace

CheckFailureHook SetCheckFailureHook(CheckFailureHook hook) {
  return g_hook.exchange(hook);
}

void FailCheck(const std::string& message) {
  // Hook first: it typically dumps diagnostic state (e.g. the active trace
  // buffer) that should land even if stderr is redirected away.
  if (CheckFailureHook hook = g_hook.load()) hook(message.c_str());
  std::cerr << message << std::endl;
  std::abort();
}

}  // namespace internal_logging
}  // namespace joinest
