#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace joinest {

namespace {

void DefaultLogSink(LogSeverity severity, const char* file, int line,
                    const std::string& message) {
  // One fprintf per line so concurrent writers do not interleave mid-line
  // (stdio locks the stream per call).
  std::fprintf(stderr, "%s %s:%d] %s\n", LogSeverityName(severity), file, line,
               message.c_str());
}

std::atomic<LogSinkFn> g_log_sink{&DefaultLogSink};
std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};
std::atomic<int64_t> g_emitted[3] = {{0}, {0}, {0}};
std::atomic<int64_t> g_suppressed{0};

// ShouldLog stages the count of calls it suppressed since the last emission
// here; the next LogMessage constructed on the same thread consumes it.
// Thread-local because the staging happens between two separate expressions
// of one macro expansion, always on one thread.
thread_local int64_t t_pending_suppressed = 0;

}  // namespace

const char* LogSeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarn:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

LogSinkFn SetLogSink(LogSinkFn sink) {
  return g_log_sink.exchange(sink != nullptr ? sink : &DefaultLogSink);
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(
      g_min_severity.load(std::memory_order_relaxed));
}

LogStats GetLogStats() {
  LogStats stats;
  for (int i = 0; i < 3; ++i) {
    stats.emitted[i] = g_emitted[i].load(std::memory_order_relaxed);
  }
  stats.suppressed = g_suppressed.load(std::memory_order_relaxed);
  return stats;
}

namespace internal_logging {

namespace {
std::atomic<CheckFailureHook> g_hook{nullptr};
}  // namespace

CheckFailureHook SetCheckFailureHook(CheckFailureHook hook) {
  return g_hook.exchange(hook);
}

void FailCheck(const std::string& message) {
  // Hook first: it typically dumps diagnostic state (e.g. the active trace
  // buffer) that should land even if stderr is redirected away.
  if (CheckFailureHook hook = g_hook.load()) hook(message.c_str());
  std::cerr << message << std::endl;
  std::abort();
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {
  if (t_pending_suppressed > 0) {
    stream_ << "[+" << t_pending_suppressed << " suppressed] ";
    t_pending_suppressed = 0;
  }
}

LogMessage::~LogMessage() {
  g_emitted[static_cast<int>(severity_)].fetch_add(1,
                                                   std::memory_order_relaxed);
  g_log_sink.load(std::memory_order_acquire)(severity_, file_, line_,
                                             stream_.str());
}

bool LogSiteState::ShouldLog(int64_t n) {
  if (n <= 1) return true;
  int64_t seq = count_.fetch_add(1, std::memory_order_relaxed);
  if (seq % n == 0) {
    // seq > 0 means n-1 calls landed in the suppressed gap before this one.
    if (seq > 0) t_pending_suppressed = n - 1;
    return true;
  }
  g_suppressed.fetch_add(1, std::memory_order_relaxed);
  return false;
}

}  // namespace internal_logging
}  // namespace joinest
