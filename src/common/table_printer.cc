#include "common/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace joinest {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  JOINEST_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  JOINEST_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < row.size(); ++i) {
      os << " " << row[i] << std::string(widths[i] - row[i].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

std::string FormatNumber(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  const double magnitude = std::abs(value);
  char buffer[64];
  if (value == std::floor(value) && magnitude < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  if (magnitude != 0 && (magnitude < 1e-3 || magnitude >= 1e7)) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    return buffer;
  }
  std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
  return buffer;
}

}  // namespace joinest
