// Disjoint-set union (union-find) with path compression and union by rank.
//
// The paper builds equivalence classes of join columns by merging the classes
// of the two sides of every equality predicate (§2). rewrite/equivalence.h
// maps columns to dense ids and uses this structure.

#ifndef JOINEST_COMMON_UNION_FIND_H_
#define JOINEST_COMMON_UNION_FIND_H_

#include <cstdint>
#include <vector>

namespace joinest {

class UnionFind {
 public:
  // Creates `n` singleton sets with ids 0..n-1.
  explicit UnionFind(int n = 0);

  // Adds a new singleton set; returns its id.
  int AddElement();

  // Representative of x's set (with path compression).
  int Find(int x);

  // Merges the sets of a and b. Returns true if they were distinct.
  bool Union(int a, int b);

  // True if a and b are in the same set.
  bool Connected(int a, int b) { return Find(a) == Find(b); }

  int size() const { return static_cast<int>(parent_.size()); }

  // Number of distinct sets.
  int NumSets() const { return num_sets_; }

 private:
  std::vector<int> parent_;
  std::vector<int> rank_;
  int num_sets_ = 0;
};

}  // namespace joinest

#endif  // JOINEST_COMMON_UNION_FIND_H_
