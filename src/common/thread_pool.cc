#include "common/thread_pool.h"

#include <cstdlib>
#include <utility>

#include "common/logging.h"

namespace joinest {

namespace {

std::atomic<ThreadPoolObserver*> g_observer{nullptr};

// Index of the worker the current thread is running as, or -1. Used to
// route nested submissions to the submitting worker's own deque.
thread_local int t_worker_index = -1;
thread_local const ThreadPool* t_worker_pool = nullptr;

struct ObservedTask {
  ThreadPoolObserver* observer;
  int worker;
  bool stolen;
  void* token = nullptr;

  ObservedTask(int worker_index, bool was_stolen)
      : observer(g_observer.load(std::memory_order_acquire)),
        worker(worker_index),
        stolen(was_stolen) {
    if (observer != nullptr) token = observer->TaskStarted(worker, stolen);
  }
  ~ObservedTask() {
    if (observer != nullptr) observer->TaskFinished(worker, stolen, token);
  }
};

}  // namespace

void InstallThreadPoolObserver(ThreadPoolObserver* observer) {
  g_observer.store(observer, std::memory_order_release);
}

ThreadPool::ThreadPool(int num_workers) {
  JOINEST_CHECK_GE(num_workers, 0);
  queues_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  // Drain: the destructor completes pending tasks rather than dropping
  // them — a TaskGroup submitted to this pool may already have accounted
  // for them.
  while (true) {
    bool ran = false;
    for (size_t q = 0; q < queues_.size(); ++q) {
      Task task;
      {
        MutexLock lock(queues_[q]->mu);
        if (!queues_[q]->tasks.empty()) {
          task = std::move(queues_[q]->tasks.front());
          queues_[q]->tasks.pop_front();
        }
      }
      if (task) {
        pending_.fetch_sub(1, std::memory_order_relaxed);
        tasks_inline_.fetch_add(1, std::memory_order_relaxed);
        ObservedTask observed(-1, false);
        task();
        ran = true;
      }
    }
    if (!ran) break;
  }
  {
    MutexLock lock(sleep_mu_);
    stop_ = true;
  }
  sleep_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(Task task) {
  const int64_t workers = static_cast<int64_t>(workers_.size());
  if (workers == 0 ||
      pending_.load(std::memory_order_relaxed) >=
          kMaxPendingPerWorker * workers) {
    // No workers, or the queues are saturated: the producer becomes the
    // worker. Keeps submission bounded without ever blocking.
    tasks_inline_.fetch_add(1, std::memory_order_relaxed);
    ObservedTask observed(-1, false);
    task();
    return;
  }
  size_t target;
  if (t_worker_pool == this && t_worker_index >= 0) {
    target = static_cast<size_t>(t_worker_index);  // Nested: own deque.
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  const int64_t depth = pending_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    MutexLock lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  if (ThreadPoolObserver* obs = g_observer.load(std::memory_order_acquire)) {
    obs->QueueDepth(depth);
  }
  sleep_cv_.NotifyOne();
}

bool ThreadPool::TryRunOneTask(int index) {
  const size_t n = queues_.size();
  // Own deque first, from the back: the freshest (cache-hot) task.
  Task task;
  bool stolen = false;
  {
    WorkerQueue& own = *queues_[static_cast<size_t>(index)];
    MutexLock lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (!task) {
    // Steal from the front of the first non-empty victim: oldest task, the
    // one most likely to represent a large untouched work item.
    for (size_t delta = 1; delta < n && !task; ++delta) {
      WorkerQueue& victim =
          *queues_[(static_cast<size_t>(index) + delta) % n];
      MutexLock lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        stolen = true;
      }
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  if (stolen) tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
  ObservedTask observed(index, stolen);
  task();
  return true;
}

void ThreadPool::WorkerLoop(int index) {
  t_worker_index = index;
  t_worker_pool = this;
  while (true) {
    if (TryRunOneTask(index)) continue;
    MutexLock lock(sleep_mu_);
    if (pending_.load(std::memory_order_relaxed) > 0) continue;
    // Drain-before-exit: stop_ is only honoured once every queue is empty,
    // so destroying the pool with tasks pending completes them.
    if (stop_) return;
    // While-loop wait (not a predicate lambda): the guarded stop_ reads
    // stay inside the locked scope where the analysis can see them.
    while (!stop_ && pending_.load(std::memory_order_relaxed) <= 0) {
      sleep_cv_.Wait(sleep_mu_);
    }
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  s.tasks_inline = tasks_inline_.load(std::memory_order_relaxed);
  s.pending = pending_.load(std::memory_order_relaxed);
  return s;
}

// ------------------------------------------------------------- TaskGroup

TaskGroup::TaskGroup(ThreadPool& pool)
    : pool_(pool), state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() { Wait(); }

bool TaskGroup::RunOne(const std::shared_ptr<State>& state) {
  std::function<void()> fn;
  {
    MutexLock lock(state->mu);
    if (state->unstarted.empty()) return false;
    fn = std::move(state->unstarted.front());
    state->unstarted.pop_front();
  }
  fn();
  bool last;
  {
    MutexLock lock(state->mu);
    last = --state->outstanding == 0;
  }
  if (last) state->cv.NotifyAll();
  return true;
}

void TaskGroup::Run(std::function<void()> fn) {
  {
    MutexLock lock(state_->mu);
    ++state_->outstanding;
    state_->unstarted.push_back(std::move(fn));
  }
  // The pool task is a claim ticket, not the closure itself: whichever of
  // a worker or the waiting thread gets there first pops the real task, so
  // Wait() can help without double execution.
  std::shared_ptr<State> state = state_;
  pool_.Submit([state] { RunOne(state); });
}

void TaskGroup::Wait() {
  // Help first: run this group's unstarted tasks on the waiting thread.
  while (RunOne(state_)) {
  }
  MutexLock lock(state_->mu);
  while (state_->outstanding != 0) state_->cv.Wait(state_->mu);
}

// ---------------------------------------------------------- Shared pool

int NumPoolThreads() {
  if (const char* env = std::getenv("JOINEST_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& SharedThreadPool() {
  // Leaked on purpose: workers park when idle, and tearing the pool down
  // during static destruction would race exiting threads.
  static ThreadPool* pool = new ThreadPool(NumPoolThreads() - 1);
  return *pool;
}

}  // namespace joinest
