// Clang thread-safety annotations + the annotated lock vocabulary.
//
// Two things live here, deliberately in one header:
//
//  1. The JOINEST_* annotation macros wrapping Clang's thread-safety
//     attributes (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
//     Under Clang, `-Wthread-safety -Wthread-safety-beta` turn every
//     locking discipline they express into a compile error when violated;
//     under other compilers they expand to nothing. The intent mirrors the
//     JOINEST_CHECK* contract layer (common/check.h): check.h proves the
//     paper's numeric invariants at run time, this header proves the
//     engine's lock invariants at compile time.
//
//  2. joinest::Mutex / joinest::MutexLock / joinest::CondVar — thin,
//     zero-overhead wrappers over std::mutex / std::condition_variable that
//     carry the capability annotations. ALL mutex use in src/ goes through
//     these (enforced by the `raw-mutex` checker in tools/lint): a naked
//     std::mutex is invisible to the analysis, so one raw lock_guard would
//     punch a silent hole in the whole proof.
//
// Annotation cheat sheet:
//   JOINEST_GUARDED_BY(mu)   on a field: reads/writes require mu held.
//   JOINEST_REQUIRES(mu)     on a function: caller must hold mu.
//   JOINEST_ACQUIRE/RELEASE  on a function: it takes / drops mu itself.
//   JOINEST_EXCLUDES(mu)     on a function: caller must NOT hold mu
//                            (deadlock guard for self-calling APIs).
//   JOINEST_CAPABILITY       declares a lockable type (Mutex below).
//
// Waiting: CondVar::Wait(mu) REQUIRES(mu) — the wrapper releases and
// reacquires the native mutex internally, which matches the annotation's
// model (held before, held after). Spurious wakeups are the caller's
// problem, exactly as with std::condition_variable: always wait in a
// `while (!predicate)` loop so the guarded predicate reads sit visibly
// inside the locked scope (lambda predicates would hide them from the
// analysis).

#ifndef JOINEST_COMMON_THREAD_ANNOTATIONS_H_
#define JOINEST_COMMON_THREAD_ANNOTATIONS_H_

// lint:allow(raw-mutex) this header IS the sanctioned home of std::mutex.
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define JOINEST_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define JOINEST_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

#define JOINEST_CAPABILITY(x) JOINEST_THREAD_ANNOTATION_(capability(x))
#define JOINEST_SCOPED_CAPABILITY JOINEST_THREAD_ANNOTATION_(scoped_lockable)
#define JOINEST_GUARDED_BY(x) JOINEST_THREAD_ANNOTATION_(guarded_by(x))
#define JOINEST_PT_GUARDED_BY(x) JOINEST_THREAD_ANNOTATION_(pt_guarded_by(x))
#define JOINEST_ACQUIRED_BEFORE(...) \
  JOINEST_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define JOINEST_ACQUIRED_AFTER(...) \
  JOINEST_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define JOINEST_REQUIRES(...) \
  JOINEST_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define JOINEST_REQUIRES_SHARED(...) \
  JOINEST_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define JOINEST_ACQUIRE(...) \
  JOINEST_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define JOINEST_ACQUIRE_SHARED(...) \
  JOINEST_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define JOINEST_RELEASE(...) \
  JOINEST_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define JOINEST_RELEASE_SHARED(...) \
  JOINEST_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define JOINEST_TRY_ACQUIRE(...) \
  JOINEST_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define JOINEST_EXCLUDES(...) \
  JOINEST_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define JOINEST_ASSERT_CAPABILITY(x) \
  JOINEST_THREAD_ANNOTATION_(assert_capability(x))
#define JOINEST_RETURN_CAPABILITY(x) \
  JOINEST_THREAD_ANNOTATION_(lock_returned(x))
#define JOINEST_NO_THREAD_SAFETY_ANALYSIS \
  JOINEST_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace joinest {

// A std::mutex the analysis can see. Same size, same codegen; the
// annotations are the whole point.
class JOINEST_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() JOINEST_ACQUIRE() { mu_.lock(); }
  void Unlock() JOINEST_RELEASE() { mu_.unlock(); }
  bool TryLock() JOINEST_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock over a Mutex — the project's std::lock_guard. Scoped
// capability: the analysis treats the guarded scope as holding the mutex.
class JOINEST_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) JOINEST_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() JOINEST_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to joinest::Mutex. Wait() requires the mutex
// held and returns with it held again (it may wake spuriously — wait in a
// while loop over the guarded predicate).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) JOINEST_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() afterwards so the unique_lock does not unlock it on exit —
    // ownership stays with the caller's MutexLock, as annotated.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace joinest

#endif  // JOINEST_COMMON_THREAD_ANNOTATIONS_H_
