#include "workloads/perturb.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace joinest {

namespace {

double LogUniformFactor(double epsilon, Rng& rng) {
  if (epsilon <= 0) return 1.0;
  const double hi = std::log1p(epsilon);
  // Uniform in [-hi, hi] on the log scale.
  return std::exp((rng.NextDouble() * 2 - 1) * hi);
}

}  // namespace

TableStats PerturbStats(const TableStats& stats,
                        const PerturbOptions& options, Rng& rng) {
  JOINEST_CHECK_GE(options.epsilon, 0.0);
  TableStats result = stats;
  if (options.perturb_row_count) {
    result.row_count = std::max(
        1.0, std::round(stats.row_count *
                        LogUniformFactor(options.epsilon, rng)));
  }
  if (options.perturb_distinct) {
    for (ColumnStats& col : result.columns) {
      col.distinct_count = std::clamp(
          std::round(col.distinct_count *
                     LogUniformFactor(options.epsilon, rng)),
          1.0, result.row_count);
    }
  }
  return result;
}

}  // namespace joinest
