#include "workloads/metrics.h"

#include <cmath>
#include <sstream>

#include "common/table_printer.h"

namespace joinest {

double QError(double estimate, double truth) {
  if (estimate <= 0 && truth <= 0) return 1.0;
  if (estimate <= 0 || truth <= 0) return HUGE_VAL;
  return std::max(estimate / truth, truth / estimate);
}

AccuracySummary Summarize(
    const std::vector<std::pair<double, double>>& estimate_truth) {
  AccuracySummary summary;
  double log_ratio_sum = 0;
  double q_sum = 0;
  double q_max = 1.0;
  int within2 = 0;
  for (const auto& [estimate, truth] : estimate_truth) {
    if (truth <= 0) continue;
    ++summary.count;
    const double q = QError(estimate, truth);
    q_sum += q;
    q_max = std::max(q_max, q);
    if (q <= 2.0) ++within2;
    log_ratio_sum +=
        std::log(std::max(estimate, 1e-300) / truth);
  }
  if (summary.count == 0) return summary;
  summary.geometric_mean_ratio = std::exp(log_ratio_sum / summary.count);
  summary.mean_q_error = q_sum / summary.count;
  summary.max_q_error = q_max;
  summary.within_factor_two =
      static_cast<double>(within2) / summary.count;
  return summary;
}

std::string AccuracySummary::ToString() const {
  std::ostringstream oss;
  oss << "n=" << count << " gmean(est/true)=" <<
      FormatNumber(geometric_mean_ratio, 3)
      << " mean-q=" << FormatNumber(mean_q_error, 3)
      << " max-q=" << FormatNumber(max_q_error, 3)
      << " within2x=" << FormatNumber(100 * within_factor_two, 3) << "%";
  return oss.str();
}

}  // namespace joinest
