// Catalog-statistics perturbation, for studying how errors in the
// maintained statistics propagate through join-size estimation (the paper
// cites Ioannidis & Christodoulakis [4] for exactly this question).

#ifndef JOINEST_WORKLOADS_PERTURB_H_
#define JOINEST_WORKLOADS_PERTURB_H_

#include "common/random.h"
#include "stats/column_stats.h"

namespace joinest {

struct PerturbOptions {
  // Each statistic s becomes s × f with f drawn log-uniformly from
  // [1/(1+epsilon), 1+epsilon]. epsilon = 0 is a no-op.
  double epsilon = 0.0;
  bool perturb_row_count = true;
  bool perturb_distinct = true;
};

// Returns a perturbed copy. Distinct counts stay within [1, row_count];
// histograms/min/max are left untouched (they are derived data the
// perturbation study doesn't target).
TableStats PerturbStats(const TableStats& stats,
                        const PerturbOptions& options, Rng& rng);

}  // namespace joinest

#endif  // JOINEST_WORKLOADS_PERTURB_H_
