#include "workloads/generator.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "storage/datagen.h"

namespace joinest {

namespace {

// Edge list of the requested query shape over tables 0..n-1.
std::vector<std::pair<int, int>> ShapeEdges(WorkloadOptions::Shape shape,
                                            int n) {
  std::vector<std::pair<int, int>> edges;
  switch (shape) {
    case WorkloadOptions::Shape::kChain:
      for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
      break;
    case WorkloadOptions::Shape::kStar:
      for (int i = 1; i < n; ++i) edges.emplace_back(0, i);
      break;
    case WorkloadOptions::Shape::kClique:
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) edges.emplace_back(i, j);
      }
      break;
    case WorkloadOptions::Shape::kCycle:
      for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
      if (n > 2) edges.emplace_back(n - 1, 0);
      break;
  }
  return edges;
}

StatusOr<GeneratedWorkload> GenerateSingleClass(
    const WorkloadOptions& options, Rng& rng) {
  GeneratedWorkload w;
  for (int t = 0; t < options.num_tables; ++t) {
    int64_t rows = rng.NextInt(options.min_rows, options.max_rows);
    const int64_t d_cap = std::min(rows, options.max_distinct);
    const int64_t d = rng.NextInt(std::min(options.min_distinct, d_cap),
                                  d_cap);
    std::vector<int64_t> column;
    if (options.balanced) {
      rows = std::max<int64_t>(rows - rows % d, d);  // Multiple of d.
      column = MakeBalancedColumn(rows, d, rng);
    } else if (options.zipf_theta > 0) {
      column = MakeZipfColumn(rows, d, options.zipf_theta, rng);
    } else {
      column = MakeUniformColumn(rows, d, rng);
    }
    Table table = Table::FromColumns(
        Schema({{"k" + std::to_string(t), TypeKind::kInt64}}),
        {ToValueColumn(std::move(column))});
    JOINEST_ASSIGN_OR_RETURN(
        [[maybe_unused]] int id,
        w.catalog.AddTable("T" + std::to_string(t), std::move(table),
                           options.analyze));
  }
  w.spec.count_star = true;
  for (int t = 0; t < options.num_tables; ++t) {
    JOINEST_ASSIGN_OR_RETURN(
        [[maybe_unused]] int index,
        w.spec.AddTable(w.catalog, "T" + std::to_string(t)));
  }
  for (const auto& [a, b] : ShapeEdges(options.shape, options.num_tables)) {
    w.spec.predicates.push_back(
        Predicate::Join(ColumnRef{a, 0}, ColumnRef{b, 0}));
  }
  return w;
}

StatusOr<GeneratedWorkload> GenerateFkChain(const WorkloadOptions& options,
                                            Rng& rng) {
  if (options.shape != WorkloadOptions::Shape::kChain) {
    return Unimplemented(
        "multi-class workloads support the chain shape only");
  }
  GeneratedWorkload w;
  const int n = options.num_tables;
  std::vector<int64_t> rows(n);
  for (int t = 0; t < n; ++t) {
    rows[t] = rng.NextInt(options.min_rows, options.max_rows);
  }
  for (int t = 0; t < n; ++t) {
    const int64_t fk_domain = t + 1 < n ? rows[t + 1] : rows[t];
    Table table = Table::FromColumns(
        Schema({{"pk", TypeKind::kInt64}, {"fk", TypeKind::kInt64}}),
        {ToValueColumn(MakeKeyColumn(rows[t], rng)),
         ToValueColumn(MakeUniformColumn(rows[t], fk_domain, rng,
                                         /*ensure_cover=*/false))});
    JOINEST_ASSIGN_OR_RETURN(
        [[maybe_unused]] int id,
        w.catalog.AddTable("T" + std::to_string(t), std::move(table),
                           options.analyze));
  }
  w.spec.count_star = true;
  for (int t = 0; t < n; ++t) {
    JOINEST_ASSIGN_OR_RETURN(
        [[maybe_unused]] int index,
        w.spec.AddTable(w.catalog, "T" + std::to_string(t)));
  }
  for (int t = 0; t + 1 < n; ++t) {
    w.spec.predicates.push_back(
        Predicate::Join(ColumnRef{t, 1}, ColumnRef{t + 1, 0}));
  }
  return w;
}

}  // namespace

StatusOr<GeneratedWorkload> GenerateWorkload(const WorkloadOptions& options) {
  if (options.num_tables < 2) {
    return InvalidArgument("workloads need at least two tables");
  }
  Rng rng(options.seed);
  JOINEST_ASSIGN_OR_RETURN(
      GeneratedWorkload w,
      options.single_class ? GenerateSingleClass(options, rng)
                           : GenerateFkChain(options, rng));
  if (options.add_local_predicate) {
    // Restrict ~20% of table 0's first column. Domains start at 0, so a
    // `< ceil(domain/5)` bound does the job for all generators here.
    const double d = w.catalog.stats(0).column(0).distinct_count;
    const int64_t bound = std::max<int64_t>(1, static_cast<int64_t>(d / 5));
    w.spec.predicates.push_back(Predicate::LocalConst(
        ColumnRef{0, 0}, CompareOp::kLt, Value(bound)));
  }
  JOINEST_RETURN_IF_ERROR(w.spec.Validate(w.catalog));
  return w;
}

}  // namespace joinest
