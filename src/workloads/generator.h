// Synthetic workload generation: catalogs plus conjunctive join queries in
// the shapes estimation papers sweep over (chain, star, clique, cycle).
//
// Two regimes:
//  * single_class = true — every table contributes one join column to ONE
//    equivalence class (nested prefix domains, so containment holds). This
//    is the regime where Rules M / SS / LS diverge.
//  * single_class = false — a foreign-key chain on distinct attributes
//    (kChain only): one predicate per class, bounded true sizes; the
//    control regime where all rules agree.
//
// With balanced = true the columns are exactly equifrequent, making the
// paper's uniformity assumption exact (Rule LS's estimate then equals the
// true size); zipf_theta > 0 breaks uniformity on purpose.

#ifndef JOINEST_WORKLOADS_GENERATOR_H_
#define JOINEST_WORKLOADS_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "query/query_spec.h"
#include "storage/catalog.h"

namespace joinest {

struct WorkloadOptions {
  enum class Shape { kChain, kStar, kClique, kCycle };
  Shape shape = Shape::kChain;
  int num_tables = 4;
  bool single_class = true;
  // Row counts drawn uniformly from [min_rows, max_rows]; single-class
  // column cardinalities from [min_distinct, min(rows, max_distinct)].
  int64_t min_rows = 100;
  int64_t max_rows = 2000;
  int64_t min_distinct = 20;
  int64_t max_distinct = 500;
  // Exactly equifrequent columns (rows rounded to a multiple of d).
  bool balanced = true;
  // When > 0 (and balanced == false), join columns are Zipf-distributed.
  double zipf_theta = 0.0;
  // Adds `t0.c < constant` restricting the first table to ~20%.
  bool add_local_predicate = false;
  uint64_t seed = 1;
  AnalyzeOptions analyze;
};

struct GeneratedWorkload {
  Catalog catalog;
  QuerySpec spec;
};

StatusOr<GeneratedWorkload> GenerateWorkload(const WorkloadOptions& options);

}  // namespace joinest

#endif  // JOINEST_WORKLOADS_GENERATOR_H_
