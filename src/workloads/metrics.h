// Accuracy metrics for cardinality estimates.

#ifndef JOINEST_WORKLOADS_METRICS_H_
#define JOINEST_WORKLOADS_METRICS_H_

#include <string>
#include <utility>
#include <vector>

namespace joinest {

// The q-error max(estimate/truth, truth/estimate): ≥ 1, symmetric in over-
// and under-estimation; the standard cardinality-estimation metric. Both
// zero → 1; one of them zero → +inf.
double QError(double estimate, double truth);

struct AccuracySummary {
  int count = 0;
  // Geometric mean of estimate/truth (1 = unbiased on a log scale;
  // < 1 systematic underestimation).
  double geometric_mean_ratio = 1.0;
  double mean_q_error = 1.0;
  double max_q_error = 1.0;
  // Fraction of estimates within a factor of two of the truth.
  double within_factor_two = 1.0;

  std::string ToString() const;
};

// Summarises (estimate, truth) pairs; pairs with truth <= 0 are skipped.
AccuracySummary Summarize(
    const std::vector<std::pair<double, double>>& estimate_truth);

}  // namespace joinest

#endif  // JOINEST_WORKLOADS_METRICS_H_
