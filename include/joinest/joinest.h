// joinest — public entry point.
//
// One include pulls in the estimation service facade and everything an
// application needs to drive it:
//
//   #include "joinest/joinest.h"
//
//   using namespace joinest;
//   auto db = Database::Open().value();
//   Catalog tables;
//   BuildPaperDataset(tables, {});
//   JOINEST_CHECK(db->ImportTables(std::move(tables)).ok());
//   auto session = db->CreateSession(
//       Session::Options().set_preset(AlgorithmPreset::kELS));
//   auto estimate = session->Estimate(
//       "SELECT COUNT(*) FROM S, M WHERE S.s = M.m");
//
// The facade (Database / Session / PreparedQuery / EstimateResult /
// PlannedQuery) lives in service/database.h; see docs/API.md for the
// lifecycle, snapshot semantics and cache-key contract. The lower-layer
// headers re-exported here (catalog, analyze, presets, explain analyze)
// are the types that cross the facade boundary.

#ifndef JOINEST_JOINEST_H_
#define JOINEST_JOINEST_H_

#include "common/status.h"          // Status, StatusOr.
#include "estimator/presets.h"      // AlgorithmPreset, StatsPreset.
#include "obs/explain_analyze.h"    // ExplainAnalyzeReport.
#include "obs/metrics.h"            // MetricsRegistry (scraping).
#include "pt/reducer.h"             // PtResult (ExecuteResult carries one).
#include "query/query_spec.h"       // QuerySpec.
#include "service/cache.h"          // ServiceCacheStats.
#include "service/database.h"       // Database, Session, results.
#include "service/snapshot.h"       // CatalogSnapshot, SnapshotBuilder.
#include "storage/analyze.h"        // AnalyzeOptions.
#include "storage/catalog.h"        // Catalog, TableStats.
#include "storage/datasets.h"       // Paper dataset builders.
#include "storage/table.h"          // Table.

#endif  // JOINEST_JOINEST_H_
