# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;joinest_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(types_test "/root/repo/build/tests/types_test")
set_tests_properties(types_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;joinest_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stats_test "/root/repo/build/tests/stats_test")
set_tests_properties(stats_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;joinest_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;joinest_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(query_test "/root/repo/build/tests/query_test")
set_tests_properties(query_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;joinest_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rewrite_test "/root/repo/build/tests/rewrite_test")
set_tests_properties(rewrite_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;joinest_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(estimator_test "/root/repo/build/tests/estimator_test")
set_tests_properties(estimator_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;joinest_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(executor_test "/root/repo/build/tests/executor_test")
set_tests_properties(executor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;joinest_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(optimizer_test "/root/repo/build/tests/optimizer_test")
set_tests_properties(optimizer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;joinest_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;joinest_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;joinest_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;joinest_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(csv_test "/root/repo/build/tests/csv_test")
set_tests_properties(csv_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;joinest_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(scenario_test "/root/repo/build/tests/scenario_test")
set_tests_properties(scenario_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;21;joinest_test;/root/repo/tests/CMakeLists.txt;0;")
