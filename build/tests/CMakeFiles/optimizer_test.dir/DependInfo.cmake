
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optimizer/CMakeFiles/joinest_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/estimator/CMakeFiles/joinest_estimator.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/joinest_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/executor/CMakeFiles/joinest_executor.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/joinest_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/joinest_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/joinest_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/joinest_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/joinest_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/joinest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
