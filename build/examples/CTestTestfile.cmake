# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(shell_smoke "sh" "-c" "printf 'gen example1\\nrun SELECT COUNT(*) FROM R1, R2, R3 WHERE R1.x = R2.y AND R2.y = R3.z\\nquit\\n' | /root/repo/build/examples/joinest_shell | grep -q 'COUNT(\\*) = 1000'")
set_tests_properties(shell_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(shell_groupby_smoke "sh" "-c" "printf 'gen example1\\nrun SELECT COUNT(*) FROM R1, R2 WHERE R1.x = R2.y GROUP BY R1.x\\nquit\\n' | /root/repo/build/examples/joinest_shell | grep -qF '10 groups, total COUNT(*) = 1000'")
set_tests_properties(shell_groupby_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
