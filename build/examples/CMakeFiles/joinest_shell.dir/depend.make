# Empty dependencies file for joinest_shell.
# This may be replaced when dependencies are built.
