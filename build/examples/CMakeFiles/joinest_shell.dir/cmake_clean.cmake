file(REMOVE_RECURSE
  "CMakeFiles/joinest_shell.dir/joinest_shell.cpp.o"
  "CMakeFiles/joinest_shell.dir/joinest_shell.cpp.o.d"
  "joinest_shell"
  "joinest_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinest_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
