# Empty compiler generated dependencies file for star_schema.
# This may be replaced when dependencies are built.
