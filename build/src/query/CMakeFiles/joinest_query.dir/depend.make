# Empty dependencies file for joinest_query.
# This may be replaced when dependencies are built.
