
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/lexer.cc" "src/query/CMakeFiles/joinest_query.dir/lexer.cc.o" "gcc" "src/query/CMakeFiles/joinest_query.dir/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/joinest_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/joinest_query.dir/parser.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/query/CMakeFiles/joinest_query.dir/predicate.cc.o" "gcc" "src/query/CMakeFiles/joinest_query.dir/predicate.cc.o.d"
  "/root/repo/src/query/query_spec.cc" "src/query/CMakeFiles/joinest_query.dir/query_spec.cc.o" "gcc" "src/query/CMakeFiles/joinest_query.dir/query_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/joinest_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/joinest_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/joinest_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/joinest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
