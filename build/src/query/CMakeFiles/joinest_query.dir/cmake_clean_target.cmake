file(REMOVE_RECURSE
  "libjoinest_query.a"
)
