file(REMOVE_RECURSE
  "CMakeFiles/joinest_query.dir/lexer.cc.o"
  "CMakeFiles/joinest_query.dir/lexer.cc.o.d"
  "CMakeFiles/joinest_query.dir/parser.cc.o"
  "CMakeFiles/joinest_query.dir/parser.cc.o.d"
  "CMakeFiles/joinest_query.dir/predicate.cc.o"
  "CMakeFiles/joinest_query.dir/predicate.cc.o.d"
  "CMakeFiles/joinest_query.dir/query_spec.cc.o"
  "CMakeFiles/joinest_query.dir/query_spec.cc.o.d"
  "libjoinest_query.a"
  "libjoinest_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinest_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
