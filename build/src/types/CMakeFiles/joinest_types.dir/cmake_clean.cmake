file(REMOVE_RECURSE
  "CMakeFiles/joinest_types.dir/schema.cc.o"
  "CMakeFiles/joinest_types.dir/schema.cc.o.d"
  "CMakeFiles/joinest_types.dir/value.cc.o"
  "CMakeFiles/joinest_types.dir/value.cc.o.d"
  "libjoinest_types.a"
  "libjoinest_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinest_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
