file(REMOVE_RECURSE
  "libjoinest_types.a"
)
