# Empty compiler generated dependencies file for joinest_types.
# This may be replaced when dependencies are built.
