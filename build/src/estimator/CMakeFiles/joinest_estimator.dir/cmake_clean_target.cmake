file(REMOVE_RECURSE
  "libjoinest_estimator.a"
)
