# Empty compiler generated dependencies file for joinest_estimator.
# This may be replaced when dependencies are built.
