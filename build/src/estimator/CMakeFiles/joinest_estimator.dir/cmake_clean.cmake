file(REMOVE_RECURSE
  "CMakeFiles/joinest_estimator.dir/analyzed_query.cc.o"
  "CMakeFiles/joinest_estimator.dir/analyzed_query.cc.o.d"
  "CMakeFiles/joinest_estimator.dir/presets.cc.o"
  "CMakeFiles/joinest_estimator.dir/presets.cc.o.d"
  "CMakeFiles/joinest_estimator.dir/table_profile.cc.o"
  "CMakeFiles/joinest_estimator.dir/table_profile.cc.o.d"
  "libjoinest_estimator.a"
  "libjoinest_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinest_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
