file(REMOVE_RECURSE
  "libjoinest_executor.a"
)
