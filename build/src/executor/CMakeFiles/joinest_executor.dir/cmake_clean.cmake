file(REMOVE_RECURSE
  "CMakeFiles/joinest_executor.dir/compile.cc.o"
  "CMakeFiles/joinest_executor.dir/compile.cc.o.d"
  "CMakeFiles/joinest_executor.dir/eval.cc.o"
  "CMakeFiles/joinest_executor.dir/eval.cc.o.d"
  "CMakeFiles/joinest_executor.dir/execute.cc.o"
  "CMakeFiles/joinest_executor.dir/execute.cc.o.d"
  "CMakeFiles/joinest_executor.dir/join_ops.cc.o"
  "CMakeFiles/joinest_executor.dir/join_ops.cc.o.d"
  "CMakeFiles/joinest_executor.dir/operator.cc.o"
  "CMakeFiles/joinest_executor.dir/operator.cc.o.d"
  "CMakeFiles/joinest_executor.dir/plan.cc.o"
  "CMakeFiles/joinest_executor.dir/plan.cc.o.d"
  "CMakeFiles/joinest_executor.dir/scan_ops.cc.o"
  "CMakeFiles/joinest_executor.dir/scan_ops.cc.o.d"
  "libjoinest_executor.a"
  "libjoinest_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinest_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
