# Empty dependencies file for joinest_executor.
# This may be replaced when dependencies are built.
