
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/executor/compile.cc" "src/executor/CMakeFiles/joinest_executor.dir/compile.cc.o" "gcc" "src/executor/CMakeFiles/joinest_executor.dir/compile.cc.o.d"
  "/root/repo/src/executor/eval.cc" "src/executor/CMakeFiles/joinest_executor.dir/eval.cc.o" "gcc" "src/executor/CMakeFiles/joinest_executor.dir/eval.cc.o.d"
  "/root/repo/src/executor/execute.cc" "src/executor/CMakeFiles/joinest_executor.dir/execute.cc.o" "gcc" "src/executor/CMakeFiles/joinest_executor.dir/execute.cc.o.d"
  "/root/repo/src/executor/join_ops.cc" "src/executor/CMakeFiles/joinest_executor.dir/join_ops.cc.o" "gcc" "src/executor/CMakeFiles/joinest_executor.dir/join_ops.cc.o.d"
  "/root/repo/src/executor/operator.cc" "src/executor/CMakeFiles/joinest_executor.dir/operator.cc.o" "gcc" "src/executor/CMakeFiles/joinest_executor.dir/operator.cc.o.d"
  "/root/repo/src/executor/plan.cc" "src/executor/CMakeFiles/joinest_executor.dir/plan.cc.o" "gcc" "src/executor/CMakeFiles/joinest_executor.dir/plan.cc.o.d"
  "/root/repo/src/executor/scan_ops.cc" "src/executor/CMakeFiles/joinest_executor.dir/scan_ops.cc.o" "gcc" "src/executor/CMakeFiles/joinest_executor.dir/scan_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/joinest_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/joinest_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/joinest_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/joinest_common.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/joinest_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
