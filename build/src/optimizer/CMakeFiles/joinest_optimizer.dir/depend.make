# Empty dependencies file for joinest_optimizer.
# This may be replaced when dependencies are built.
