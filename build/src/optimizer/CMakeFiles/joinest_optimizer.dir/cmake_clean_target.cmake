file(REMOVE_RECURSE
  "libjoinest_optimizer.a"
)
