file(REMOVE_RECURSE
  "CMakeFiles/joinest_optimizer.dir/cost_model.cc.o"
  "CMakeFiles/joinest_optimizer.dir/cost_model.cc.o.d"
  "CMakeFiles/joinest_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/joinest_optimizer.dir/optimizer.cc.o.d"
  "libjoinest_optimizer.a"
  "libjoinest_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinest_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
