
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/generator.cc" "src/workloads/CMakeFiles/joinest_workloads.dir/generator.cc.o" "gcc" "src/workloads/CMakeFiles/joinest_workloads.dir/generator.cc.o.d"
  "/root/repo/src/workloads/metrics.cc" "src/workloads/CMakeFiles/joinest_workloads.dir/metrics.cc.o" "gcc" "src/workloads/CMakeFiles/joinest_workloads.dir/metrics.cc.o.d"
  "/root/repo/src/workloads/perturb.cc" "src/workloads/CMakeFiles/joinest_workloads.dir/perturb.cc.o" "gcc" "src/workloads/CMakeFiles/joinest_workloads.dir/perturb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/joinest_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/joinest_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/joinest_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/joinest_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/joinest_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
