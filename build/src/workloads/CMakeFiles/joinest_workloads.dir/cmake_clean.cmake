file(REMOVE_RECURSE
  "CMakeFiles/joinest_workloads.dir/generator.cc.o"
  "CMakeFiles/joinest_workloads.dir/generator.cc.o.d"
  "CMakeFiles/joinest_workloads.dir/metrics.cc.o"
  "CMakeFiles/joinest_workloads.dir/metrics.cc.o.d"
  "CMakeFiles/joinest_workloads.dir/perturb.cc.o"
  "CMakeFiles/joinest_workloads.dir/perturb.cc.o.d"
  "libjoinest_workloads.a"
  "libjoinest_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinest_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
