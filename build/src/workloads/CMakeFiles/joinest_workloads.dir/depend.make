# Empty dependencies file for joinest_workloads.
# This may be replaced when dependencies are built.
