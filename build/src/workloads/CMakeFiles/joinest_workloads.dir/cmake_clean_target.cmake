file(REMOVE_RECURSE
  "libjoinest_workloads.a"
)
