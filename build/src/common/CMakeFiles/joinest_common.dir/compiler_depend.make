# Empty compiler generated dependencies file for joinest_common.
# This may be replaced when dependencies are built.
