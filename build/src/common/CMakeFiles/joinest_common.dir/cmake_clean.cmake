file(REMOVE_RECURSE
  "CMakeFiles/joinest_common.dir/random.cc.o"
  "CMakeFiles/joinest_common.dir/random.cc.o.d"
  "CMakeFiles/joinest_common.dir/status.cc.o"
  "CMakeFiles/joinest_common.dir/status.cc.o.d"
  "CMakeFiles/joinest_common.dir/table_printer.cc.o"
  "CMakeFiles/joinest_common.dir/table_printer.cc.o.d"
  "CMakeFiles/joinest_common.dir/union_find.cc.o"
  "CMakeFiles/joinest_common.dir/union_find.cc.o.d"
  "libjoinest_common.a"
  "libjoinest_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinest_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
