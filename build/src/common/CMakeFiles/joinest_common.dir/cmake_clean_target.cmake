file(REMOVE_RECURSE
  "libjoinest_common.a"
)
