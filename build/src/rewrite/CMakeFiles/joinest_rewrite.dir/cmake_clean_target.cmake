file(REMOVE_RECURSE
  "libjoinest_rewrite.a"
)
