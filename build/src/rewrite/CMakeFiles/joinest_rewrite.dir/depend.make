# Empty dependencies file for joinest_rewrite.
# This may be replaced when dependencies are built.
