file(REMOVE_RECURSE
  "CMakeFiles/joinest_rewrite.dir/equivalence.cc.o"
  "CMakeFiles/joinest_rewrite.dir/equivalence.cc.o.d"
  "CMakeFiles/joinest_rewrite.dir/local_merge.cc.o"
  "CMakeFiles/joinest_rewrite.dir/local_merge.cc.o.d"
  "CMakeFiles/joinest_rewrite.dir/transitive_closure.cc.o"
  "CMakeFiles/joinest_rewrite.dir/transitive_closure.cc.o.d"
  "libjoinest_rewrite.a"
  "libjoinest_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinest_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
