file(REMOVE_RECURSE
  "CMakeFiles/joinest_stats.dir/column_stats.cc.o"
  "CMakeFiles/joinest_stats.dir/column_stats.cc.o.d"
  "CMakeFiles/joinest_stats.dir/distinct.cc.o"
  "CMakeFiles/joinest_stats.dir/distinct.cc.o.d"
  "CMakeFiles/joinest_stats.dir/histogram.cc.o"
  "CMakeFiles/joinest_stats.dir/histogram.cc.o.d"
  "CMakeFiles/joinest_stats.dir/stats_io.cc.o"
  "CMakeFiles/joinest_stats.dir/stats_io.cc.o.d"
  "libjoinest_stats.a"
  "libjoinest_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinest_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
