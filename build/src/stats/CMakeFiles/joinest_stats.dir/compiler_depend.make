# Empty compiler generated dependencies file for joinest_stats.
# This may be replaced when dependencies are built.
