file(REMOVE_RECURSE
  "libjoinest_stats.a"
)
