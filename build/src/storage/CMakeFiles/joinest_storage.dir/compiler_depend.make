# Empty compiler generated dependencies file for joinest_storage.
# This may be replaced when dependencies are built.
