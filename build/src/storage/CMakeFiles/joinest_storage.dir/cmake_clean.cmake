file(REMOVE_RECURSE
  "CMakeFiles/joinest_storage.dir/analyze.cc.o"
  "CMakeFiles/joinest_storage.dir/analyze.cc.o.d"
  "CMakeFiles/joinest_storage.dir/catalog.cc.o"
  "CMakeFiles/joinest_storage.dir/catalog.cc.o.d"
  "CMakeFiles/joinest_storage.dir/csv.cc.o"
  "CMakeFiles/joinest_storage.dir/csv.cc.o.d"
  "CMakeFiles/joinest_storage.dir/datagen.cc.o"
  "CMakeFiles/joinest_storage.dir/datagen.cc.o.d"
  "CMakeFiles/joinest_storage.dir/datasets.cc.o"
  "CMakeFiles/joinest_storage.dir/datasets.cc.o.d"
  "CMakeFiles/joinest_storage.dir/index.cc.o"
  "CMakeFiles/joinest_storage.dir/index.cc.o.d"
  "CMakeFiles/joinest_storage.dir/table.cc.o"
  "CMakeFiles/joinest_storage.dir/table.cc.o.d"
  "libjoinest_storage.a"
  "libjoinest_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinest_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
