
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/analyze.cc" "src/storage/CMakeFiles/joinest_storage.dir/analyze.cc.o" "gcc" "src/storage/CMakeFiles/joinest_storage.dir/analyze.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/joinest_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/joinest_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/storage/CMakeFiles/joinest_storage.dir/csv.cc.o" "gcc" "src/storage/CMakeFiles/joinest_storage.dir/csv.cc.o.d"
  "/root/repo/src/storage/datagen.cc" "src/storage/CMakeFiles/joinest_storage.dir/datagen.cc.o" "gcc" "src/storage/CMakeFiles/joinest_storage.dir/datagen.cc.o.d"
  "/root/repo/src/storage/datasets.cc" "src/storage/CMakeFiles/joinest_storage.dir/datasets.cc.o" "gcc" "src/storage/CMakeFiles/joinest_storage.dir/datasets.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/storage/CMakeFiles/joinest_storage.dir/index.cc.o" "gcc" "src/storage/CMakeFiles/joinest_storage.dir/index.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/storage/CMakeFiles/joinest_storage.dir/table.cc.o" "gcc" "src/storage/CMakeFiles/joinest_storage.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/joinest_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/joinest_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/joinest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
