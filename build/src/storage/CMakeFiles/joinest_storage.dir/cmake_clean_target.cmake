file(REMOVE_RECURSE
  "libjoinest_storage.a"
)
