file(REMOVE_RECURSE
  "CMakeFiles/bench_section8_table.dir/bench_section8_table.cc.o"
  "CMakeFiles/bench_section8_table.dir/bench_section8_table.cc.o.d"
  "bench_section8_table"
  "bench_section8_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_section8_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
