# Empty compiler generated dependencies file for bench_section8_table.
# This may be replaced when dependencies are built.
