file(REMOVE_RECURSE
  "CMakeFiles/bench_stat_errors.dir/bench_stat_errors.cc.o"
  "CMakeFiles/bench_stat_errors.dir/bench_stat_errors.cc.o.d"
  "bench_stat_errors"
  "bench_stat_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stat_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
