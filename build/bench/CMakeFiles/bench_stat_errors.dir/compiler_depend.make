# Empty compiler generated dependencies file for bench_stat_errors.
# This may be replaced when dependencies are built.
