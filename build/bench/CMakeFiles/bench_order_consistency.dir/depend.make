# Empty dependencies file for bench_order_consistency.
# This may be replaced when dependencies are built.
