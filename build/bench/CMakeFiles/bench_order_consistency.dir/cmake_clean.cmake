file(REMOVE_RECURSE
  "CMakeFiles/bench_order_consistency.dir/bench_order_consistency.cc.o"
  "CMakeFiles/bench_order_consistency.dir/bench_order_consistency.cc.o.d"
  "bench_order_consistency"
  "bench_order_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_order_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
