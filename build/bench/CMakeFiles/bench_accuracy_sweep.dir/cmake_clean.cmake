file(REMOVE_RECURSE
  "CMakeFiles/bench_accuracy_sweep.dir/bench_accuracy_sweep.cc.o"
  "CMakeFiles/bench_accuracy_sweep.dir/bench_accuracy_sweep.cc.o.d"
  "bench_accuracy_sweep"
  "bench_accuracy_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accuracy_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
