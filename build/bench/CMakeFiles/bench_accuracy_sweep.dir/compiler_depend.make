# Empty compiler generated dependencies file for bench_accuracy_sweep.
# This may be replaced when dependencies are built.
