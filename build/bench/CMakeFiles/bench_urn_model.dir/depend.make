# Empty dependencies file for bench_urn_model.
# This may be replaced when dependencies are built.
