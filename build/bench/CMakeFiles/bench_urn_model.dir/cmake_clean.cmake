file(REMOVE_RECURSE
  "CMakeFiles/bench_urn_model.dir/bench_urn_model.cc.o"
  "CMakeFiles/bench_urn_model.dir/bench_urn_model.cc.o.d"
  "bench_urn_model"
  "bench_urn_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_urn_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
