# Empty compiler generated dependencies file for bench_paper_examples.
# This may be replaced when dependencies are built.
