file(REMOVE_RECURSE
  "CMakeFiles/bench_paper_examples.dir/bench_paper_examples.cc.o"
  "CMakeFiles/bench_paper_examples.dir/bench_paper_examples.cc.o.d"
  "bench_paper_examples"
  "bench_paper_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paper_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
