#!/usr/bin/env python3
"""Back-compat shim: the no-raw-threads rule moved into the unified lint
framework (tools/lint/lint.py, checker `no-raw-threads`). This forwards so
old invocations and muscle memory keep working; prefer

    tools/lint/lint.py --checks no-raw-threads

directly. The optional SRC_DIR argument is accepted and ignored — the
checker scopes itself to src/ (benches and tests are exempt by design).
"""

import pathlib
import subprocess
import sys


def main() -> int:
    lint = pathlib.Path(__file__).resolve().parent / "lint" / "lint.py"
    return subprocess.call(
        [sys.executable, str(lint), "--checks", "no-raw-threads"])


if __name__ == "__main__":
    sys.exit(main())
