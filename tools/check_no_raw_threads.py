#!/usr/bin/env python3
"""Enforce the shared-pool invariant: no raw std::thread in src/.

Every data-parallel subsystem (executor morsels, predicate-transfer
reduction, partitioned ANALYZE, ...) must run its work on the shared
work-stealing pool (src/common/thread_pool.{h,cc}); constructing
std::thread anywhere else in src/ reintroduces per-call thread spawn
cost and lets concurrent sessions oversubscribe the machine — exactly
what the pool exists to prevent.

Scope is src/ only: benches and tests ARE the concurrent clients, so
they may spawn std::thread freely to simulate them.

Allowed uses of the token "std::thread" outside the pool:
  * std::thread::hardware_concurrency()  (sizing queries)
  * std::this_thread::...                (yield/sleep; different type)
  * std::thread::id                      (identity checks, no spawn)
  * mentions in comments or #include lines

Usage: check_no_raw_threads.py [SRC_DIR]   (default: <repo>/src)
Exit 0 when clean, 1 with offending file:line listings otherwise.
"""

import pathlib
import re
import sys

# Files allowed to construct threads: the pool itself.
ALLOWED = {"common/thread_pool.h", "common/thread_pool.cc"}

# A raw-thread use is the std::thread type NOT followed by :: (which would
# be hardware_concurrency, ::id, etc.). std::this_thread never matches.
RAW_THREAD = re.compile(r"std::thread\b(?!::)")
COMMENT = re.compile(r"//.*$")


def offending_lines(path: pathlib.Path):
    hits = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8", errors="replace").splitlines(), 1
    ):
        if line.lstrip().startswith("#include"):
            continue
        code = COMMENT.sub("", line)
        if RAW_THREAD.search(code):
            hits.append((lineno, line.strip()))
    return hits


def main() -> int:
    repo = pathlib.Path(__file__).resolve().parent.parent
    src = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else repo / "src"
    if not src.is_dir():
        print(f"error: {src} is not a directory", file=sys.stderr)
        return 2
    bad = 0
    checked = 0
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(src).as_posix()
        if rel in ALLOWED:
            continue
        checked += 1
        for lineno, text in offending_lines(path):
            print(f"{src / rel}:{lineno}: raw std::thread: {text}")
            bad += 1
    if bad:
        print(
            f"\n{bad} raw std::thread use(s) outside common/thread_pool. "
            "Data-parallel work belongs on the shared pool "
            "(ThreadPool::Submit / TaskGroup); see docs/EXECUTOR.md.",
            file=sys.stderr,
        )
        return 1
    print(f"no raw std::thread in {checked} files under {src}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
