#!/usr/bin/env python3
"""Validate an exported trace against the Chrome trace-event schema.

Checks the JSON-object export format that chrome://tracing and Perfetto
accept, plus the invariants joinest's TraceSession promises:

  * top level is an object with a "traceEvents" array,
  * every event is a complete event ("ph": "X") with string name/cat,
    non-negative numeric ts/dur, and integer pid/tid,
  * span ids (args.span_id) are unique; parent_id is -1 or names another
    exported span (unless the ring dropped events, when parents may be gone),
  * the otherData header accounts for the ring: dropped_events >= 0,
    len(traceEvents) + dropped_events == total_events, and the export never
    carries more events than the ring's capacity,
  * a child span's [ts, ts + dur] interval lies within its parent's, up to a
    small tolerance (both are measured on the same monotonic clock),
  * a child's depth is its parent's depth + 1 (roots have depth 0).

Problems are reported in the unified lint format
(`path:line: [trace-schema] message`, see tools/lint/findings.py) so every
`ctest -L analysis` failure reads the same way.

Usage: check_trace.py TRACE.json [TRACE2.json ...]
Exits non-zero on the first invalid file.
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent / "lint"))
from findings import Finding  # noqa: E402

# Timestamps are exported in integer-truncated microseconds, so parent/child
# endpoints can disagree by a tick.
SLACK_US = 2.0

REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def fail(path, message):
    finding = Finding(checker="trace-schema", path=str(path), line=0,
                      message=message)
    print(finding.render(), file=sys.stderr)
    return 1


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"cannot parse: {e}")

    if not isinstance(trace, dict):
        return fail(path, "top level must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, 'missing "traceEvents" array')

    dropped = 0
    other = trace.get("otherData")
    if isinstance(other, dict):
        dropped = int(other.get("dropped_events", 0))
        if dropped < 0:
            return fail(path, f"otherData: dropped_events {dropped} < 0")
        # total_events/capacity entered the header later than dropped_events;
        # only validate the ring accounting when they are present.
        total = other.get("total_events")
        if total is not None:
            if len(events) + dropped != int(total):
                return fail(
                    path,
                    f"otherData: {len(events)} events + {dropped} dropped "
                    f"!= total_events {total}")
        capacity = other.get("capacity")
        if capacity is not None and len(events) > int(capacity):
            return fail(
                path,
                f"otherData: {len(events)} events exceed ring capacity "
                f"{capacity}")

    spans = {}
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            return fail(path, f"{where}: event must be an object")
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                return fail(path, f"{where}: missing required key {key!r}")
        if not isinstance(event["name"], str) or not event["name"]:
            return fail(path, f"{where}: name must be a non-empty string")
        if not isinstance(event["ph"], str):
            return fail(path, f"{where}: ph must be a string")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            return fail(path, f"{where}: ts must be a non-negative number")
        for key in ("pid", "tid"):
            if not isinstance(event[key], int):
                return fail(path, f"{where}: {key} must be an integer")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(
                    path, f"{where}: complete event needs non-negative dur")
        args = event.get("args", {})
        if not isinstance(args, dict):
            return fail(path, f"{where}: args must be an object")
        span_id = args.get("span_id")
        if span_id is not None:
            if span_id in spans:
                return fail(path, f"{where}: duplicate span_id {span_id}")
            spans[span_id] = event

    for span_id, event in spans.items():
        args = event["args"]
        parent_id = args.get("parent_id", -1)
        if parent_id == -1:
            if args.get("depth", 0) != 0:
                return fail(
                    path,
                    f"span {span_id}: root span with depth {args.get('depth')}")
            continue
        parent = spans.get(parent_id)
        if parent is None:
            if dropped > 0:
                continue  # The ring overwrote the parent; nothing to check.
            return fail(
                path,
                f"span {span_id}: parent {parent_id} missing from export")
        if args.get("depth") != parent["args"].get("depth", 0) + 1:
            return fail(
                path,
                f"span {span_id}: depth {args.get('depth')} is not parent "
                f"depth + 1")
        if event["tid"] == parent["tid"]:
            start = event["ts"]
            end = start + event.get("dur", 0)
            pstart = parent["ts"]
            pend = pstart + parent.get("dur", 0)
            if start + SLACK_US < pstart or end > pend + SLACK_US:
                return fail(
                    path,
                    f"span {span_id} [{start}, {end}] escapes parent "
                    f"{parent_id} [{pstart}, {pend}]")

    print(f"{path}: OK ({len(events)} events, {len(spans)} spans, "
          f"{dropped} dropped)")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[1:]:
        if check_file(path):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
