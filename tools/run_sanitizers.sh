#!/usr/bin/env bash
# Builds and runs the test suite under sanitizers, one out-of-tree build per
# configuration:
#
#   * asan_ubsan — AddressSanitizer + UndefinedBehaviorSanitizer over the
#     full ctest suite;
#   * tsan — ThreadSanitizer over the tests that exercise concurrency: the
#     shared work-stealing pool (thread_pool_test hammers stealing, nested
#     submission, and shutdown-with-pending-tasks directly),
#     the partitioned sketch ANALYZE path (pool tasks per row-range
#     partition),
#     the morsel-parallel executor (parity_test drives TrueResultSize
#     under JOINEST_THREADS=8; executor_test covers the shared read-only
#     hash tables it probes), and the estimation service (service_test
#     races sessions against concurrent ANALYZE snapshot republishes and
#     hammers the sharded result cache), the query flight recorder
#     (flight_recorder_test drives N writers into the mutex-sharded ring),
#     and the cardinality feedback store (feedback_test races ingestion
#     against concurrent consultation and ANALYZE aging).
#
# Usage: tools/run_sanitizers.sh [build-root]   (default: build-sanitize)

set -euo pipefail

cd "$(dirname "$0")/.."
root="${1:-build-sanitize}"

run_job() {
  local name="$1" sanitizers="$2" test_filter="$3"
  local dir="${root}/${name}"
  echo "== ${name}: -fsanitize=${sanitizers} =="
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DJOINEST_SANITIZE="${sanitizers}" >/dev/null
  cmake --build "${dir}" -j "$(nproc)" >/dev/null
  ctest --test-dir "${dir}" --output-on-failure ${test_filter}
}

# UBSan: abort on the first report so ctest fails loudly.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export TSAN_OPTIONS="halt_on_error=1"

run_job asan_ubsan "address,undefined" ""
run_job tsan "thread" "-R 'sketch_test|storage_test|parity_test|executor_test|service_test|pt_test|feedback_test|thread_pool_test|flight_recorder_test'"

echo "All sanitizer jobs passed."
