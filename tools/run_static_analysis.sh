#!/usr/bin/env bash
# Static-analysis and correctness gate for joinest.
#
# Stages (full mode):
#   1. warning gate  — out-of-tree build with -DJOINEST_WERROR=ON, which adds
#                      -Wshadow -Wconversion -Wdouble-promotion -Werror to
#                      everything under src/;
#   2. lint          — the unified project lint framework (tools/lint/lint.py):
#                      no-raw-threads, raw-mutex, nodiscard-status,
#                      banned-functions, include-hygiene, metric-name-registry;
#   3. clang-tidy    — the curated .clang-tidy profile over every src/ TU in
#                      the compile database. Skipped (loudly) when clang-tidy
#                      is not installed — the GCC gate above still runs;
#   4. thread safety — tools/check_thread_safety.sh: Clang build of src/ under
#                      -Wthread-safety -Wthread-safety-beta -Werror, proving
#                      the lock disciplines declared via
#                      common/thread_annotations.h. Skipped without clang;
#   5. sanitizers    — tools/run_sanitizers.sh (ASan+UBSan full suite, TSan
#                      concurrency subset);
#   6. fuzz          — corpus replay plus a timed deterministic fuzz run of
#                      tests/fuzz/fuzz_parser_estimator.cc with contracts on.
#
# Smoke mode (--smoke) is the cheap inner-loop variant: warning-gate build,
# lint scoped to changed files, clang-tidy restricted to files changed
# relative to HEAD (nothing changed → nothing run), corpus replay, and a
# 10-second fuzz burst. No sanitizers.
#
# Usage: tools/run_static_analysis.sh [--smoke] [--no-sanitizers]
#                                     [--fuzz-seconds N] [build-root]
#   build-root defaults to build-analysis. Exit code 0 iff every stage ran
#   clean (skips do not fail the gate).

set -euo pipefail

cd "$(dirname "$0")/.."

smoke=0
sanitizers=1
fuzz_seconds=60
root=build-analysis
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=1; sanitizers=0; fuzz_seconds=10 ;;
    --no-sanitizers) sanitizers=0 ;;
    --fuzz-seconds) shift; fuzz_seconds="$1" ;;
    -h|--help) grep '^#' "$0" | tail -n +2 | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) root="$1" ;;
  esac
  shift
done

failures=0
stage() { echo; echo "== $* =="; }

# -- Stage 1: hardened-warning build (GCC, warnings as errors). -------------
stage "warning gate (-DJOINEST_WERROR=ON)"
cmake -B "${root}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DJOINEST_WERROR=ON \
  -DJOINEST_CONTRACTS=ON >/dev/null
if cmake --build "${root}" -j "$(nproc)" >"${root}/build.log" 2>&1; then
  echo "warning gate: clean"
else
  echo "warning gate: FAILED (tail of ${root}/build.log)"
  tail -n 40 "${root}/build.log"
  failures=$((failures + 1))
fi

# -- Stage 2: unified lint framework. ---------------------------------------
stage "lint (tools/lint/lint.py)"
if command -v python3 >/dev/null 2>&1; then
  lint_args=()
  [[ ${smoke} -eq 1 ]] && lint_args+=(--changed)
  if python3 tools/lint/lint.py "${lint_args[@]}"; then
    echo "lint: clean"
  else
    echo "lint: FAILED"
    failures=$((failures + 1))
  fi
else
  echo "lint: SKIPPED (python3 not installed)"
fi

# -- Stage 3: clang-tidy over the compile database. -------------------------
stage "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ${smoke} -eq 1 ]]; then
    # Inner loop: only the src/ files touched relative to HEAD.
    mapfile -t tidy_files < <(git diff --name-only HEAD -- 'src/*.cc' \
                              | while read -r f; do [[ -f $f ]] && echo "$f"; done)
  else
    mapfile -t tidy_files < <(find src -name '*.cc' | sort)
  fi
  if [[ ${#tidy_files[@]} -eq 0 ]]; then
    echo "clang-tidy: no files to check"
  elif clang-tidy -p "${root}" --quiet "${tidy_files[@]}"; then
    echo "clang-tidy: clean (${#tidy_files[@]} files)"
  else
    echo "clang-tidy: FAILED"
    failures=$((failures + 1))
  fi
else
  echo "clang-tidy: SKIPPED (not installed; GCC warning gate covers src/)"
fi

# -- Stage 4: clang thread-safety proof. ------------------------------------
stage "thread safety (-Wthread-safety, clang)"
ts_rc=0
tools/check_thread_safety.sh "${root}/tsafety" || ts_rc=$?
if [[ ${ts_rc} -eq 77 ]]; then
  : # Skip already announced by the script; skips do not fail the gate.
elif [[ ${ts_rc} -ne 0 ]]; then
  failures=$((failures + 1))
fi

# -- Stage 5: sanitizers. ---------------------------------------------------
if [[ ${sanitizers} -eq 1 ]]; then
  stage "sanitizers"
  if tools/run_sanitizers.sh "${root}/sanitize"; then
    echo "sanitizers: clean"
  else
    echo "sanitizers: FAILED"
    failures=$((failures + 1))
  fi
fi

# -- Stage 6: fuzz (corpus replay + timed run, contracts on). ---------------
stage "fuzz (${fuzz_seconds}s + corpus replay)"
fuzzer="${root}/tests/fuzz_parser_estimator"
if [[ ! -x "${fuzzer}" ]]; then
  echo "fuzz: FAILED (fuzzer did not build)"
  failures=$((failures + 1))
else
  if "${fuzzer}" tests/fuzz/corpus &&
     "${fuzzer}" --fuzz-seconds "${fuzz_seconds}" tests/fuzz/corpus; then
    echo "fuzz: clean"
  else
    echo "fuzz: FAILED"
    failures=$((failures + 1))
  fi
fi

echo
if [[ ${failures} -gt 0 ]]; then
  echo "static analysis gate: ${failures} stage(s) FAILED"
  exit 1
fi
echo "static analysis gate: all stages passed."
