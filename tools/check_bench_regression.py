#!/usr/bin/env python3
"""Gates executor benchmark results against a checked-in baseline.

Compares rows_per_sec per mode in a BENCH_executor.json produced by
`bench_executor` with bench/BENCH_executor_baseline.json and exits non-zero
when any mode regresses by more than --threshold (fraction, default 0.20).
Modes present in only one file are reported but never fail the gate, so the
baseline does not have to be regenerated when a mode is added.

The ctest wiring (bench/CMakeLists.txt) runs this against a --smoke run
with a loose threshold: the gate exists to catch order-of-magnitude
regressions (an accidental O(n^2), a lost fast path), not scheduler noise.

--overhead-budget B widens the allowance by the fraction of throughput the
always-compiled-in observability hooks (inert spans, sharded counters,
operator timing) are permitted to cost: the effective threshold becomes
1 - (1 - threshold) * (1 - B). The budget is enforced jointly with the
noise threshold rather than as a separate gate because a single --smoke run
cannot attribute a slowdown to instrumentation vs. scheduler jitter.

--overhead-pair CUR:BASE (repeatable) gates OPT-IN instrumentation the same
way: mode CUR from the current run must stay within the composite allowance
of mode BASE from the BASELINE file. bench_executor's batch_recorder mode
(batch execution + one flight-recorder capture per run) is gated against
the plain batch baseline this way, pinning recorder-on overhead to the
--overhead-budget (<= 2% in the ctest wiring) on top of run noise.

Regressions are reported in the unified lint format
(`path:line: [bench-regression] message`, see tools/lint/findings.py) so
every `ctest -L analysis` failure reads the same way.

Usage: check_bench_regression.py CURRENT.json BASELINE.json [--threshold F]
           [--overhead-budget B] [--overhead-pair CUR:BASE ...]
"""

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent / "lint"))
from findings import Finding  # noqa: E402


def load_rates(path):
    with open(path) as f:
        data = json.load(f)
    return {m["mode"]: float(m["rows_per_sec"]) for m in data["modes"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH_executor.json")
    parser.add_argument("baseline", help="checked-in baseline json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max allowed fractional slowdown per mode")
    parser.add_argument("--overhead-budget", type=float, default=0.0,
                        help="extra fractional slowdown granted to "
                             "instrumentation overhead")
    parser.add_argument("--overhead-pair", action="append", default=[],
                        metavar="CUR:BASE",
                        help="also gate current mode CUR against baseline "
                             "mode BASE (repeatable)")
    args = parser.parse_args()

    current = load_rates(args.current)
    baseline = load_rates(args.baseline)

    # Compose multiplicatively: surviving the noise threshold after paying
    # the overhead budget means rate >= base * (1-threshold) * (1-budget).
    allowed = 1.0 - (1.0 - args.threshold) * (1.0 - args.overhead_budget)

    failures = []
    for mode, base_rate in sorted(baseline.items()):
        if mode not in current:
            print(f"note: mode '{mode}' missing from current run")
            continue
        if base_rate <= 0:
            print(f"note: mode '{mode}' has no baseline rate")
            continue
        rate = current[mode]
        ratio = rate / base_rate
        verdict = "ok"
        if ratio < 1.0 - allowed:
            verdict = "REGRESSION"
            failures.append(Finding(
                checker="bench-regression", path=args.current, line=0,
                message=(f"mode '{mode}' regressed to {ratio:.2f}x of "
                         f"baseline ({rate:.0f} vs {base_rate:.0f} rows/s; "
                         f"allowed slowdown {allowed:.0%} vs "
                         f"{args.baseline})")))
        print(f"{mode:12s} baseline {base_rate:14.0f} rows/s   "
              f"current {rate:14.0f} rows/s   ratio {ratio:5.2f}   {verdict}")
    for mode in sorted(set(current) - set(baseline)):
        print(f"note: mode '{mode}' not in baseline (skipped)")

    for pair in args.overhead_pair:
        cur_mode, _, base_mode = pair.partition(":")
        if not cur_mode or not base_mode:
            print(f"error: malformed --overhead-pair '{pair}' "
                  f"(expected CUR:BASE)", file=sys.stderr)
            return 2
        if cur_mode not in current:
            print(f"note: pair mode '{cur_mode}' missing from current run")
            continue
        if baseline.get(base_mode, 0) <= 0:
            print(f"note: pair mode '{base_mode}' has no baseline rate")
            continue
        rate, base_rate = current[cur_mode], baseline[base_mode]
        ratio = rate / base_rate
        verdict = "ok"
        if ratio < 1.0 - allowed:
            verdict = "REGRESSION"
            failures.append(Finding(
                checker="bench-regression", path=args.current, line=0,
                message=(f"mode '{cur_mode}' runs at {ratio:.2f}x of "
                         f"baseline mode '{base_mode}' ({rate:.0f} vs "
                         f"{base_rate:.0f} rows/s; allowed slowdown "
                         f"{allowed:.0%})")))
        print(f"{cur_mode:>12s} vs {base_mode:12s} "
              f"baseline {base_rate:14.0f} rows/s   "
              f"current {rate:14.0f} rows/s   ratio {ratio:5.2f}   {verdict}")

    if failures:
        for finding in failures:
            print(finding.render(), file=sys.stderr)
        return 1
    print("all modes within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
