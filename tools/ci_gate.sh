#!/usr/bin/env bash
# One-command CI gate: configure → build → tier-1 tests → smoke analysis.
#
# This is the "is the tree green" entry point — everything a reviewer (or a
# cron job) needs before trusting a commit, in dependency order, failing
# fast:
#
#   1. configure  — fresh out-of-tree CMake configure (exports
#                   compile_commands.json for clang-tidy / include-hygiene);
#   2. build      — full tree, all warnings on;
#   3. ctest      — the tier-1 suite plus the analysis-label checks that are
#                   wired as tests (lint, lint_test, contracts, fuzz replay,
#                   clang_thread_safety when clang is installed);
#   4. analysis   — tools/run_static_analysis.sh --smoke (warning gate,
#                   changed-file lint + clang-tidy, 10 s fuzz burst).
#
# The full static-analysis gate (sanitizers, 60 s fuzz, full clang-tidy) is
# deliberately not part of this script — run tools/run_static_analysis.sh
# without --smoke for that.
#
# Usage: tools/ci_gate.sh [build-root]     (build-root defaults to build-ci)

set -euo pipefail

cd "$(dirname "$0")/.."

root="${1:-build-ci}"

echo "== ci gate 1/4: configure (${root}) =="
cmake -B "${root}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DJOINEST_CONTRACTS=ON >/dev/null

echo "== ci gate 2/4: build =="
cmake --build "${root}" -j "$(nproc)"

echo "== ci gate 3/4: ctest =="
ctest --test-dir "${root}" --output-on-failure

echo "== ci gate 4/4: static analysis (--smoke) =="
tools/run_static_analysis.sh --smoke "${root}/analysis"

echo
echo "ci gate: all stages passed."
