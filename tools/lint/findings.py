"""Shared finding model and reporting for joinest's analysis tooling.

Everything that reports a problem against the tree — the lint.py checkers,
check_trace.py, check_bench_regression.py — funnels through Finding so the
output is uniformly `path:line: [checker] message`, greppable and clickable
in editors, and machine-readable via to_json().
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import sys
from typing import Iterable, List


@dataclasses.dataclass(frozen=True)
class Finding:
    """One problem at one location.

    checker: kebab-case id of the rule that fired (e.g. "raw-mutex").
    path:    file the finding is anchored to (repo-relative preferred).
    line:    1-based line number; 0 means "whole file".
    message: one-line human explanation, no trailing period needed.
    """

    checker: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        location = f"{self.path}:{self.line}" if self.line else self.path
        return f"{location}: [{self.checker}] {self.message}"

    # Baselines match on everything except the line number, so findings
    # survive unrelated edits above them.
    def baseline_key(self) -> str:
        return f"{self.checker}|{self.path}|{self.message}"


def make_finding(checker: str, path, line: int, message: str,
                 repo: pathlib.Path | None = None) -> Finding:
    """Builds a Finding with `path` rewritten relative to `repo` if possible."""
    p = pathlib.Path(path)
    if repo is not None:
        try:
            p = p.resolve().relative_to(repo.resolve())
        except ValueError:
            pass
    return Finding(checker=checker, path=p.as_posix(), line=line,
                   message=message)


def print_findings(findings: Iterable[Finding], stream=None) -> int:
    """Prints findings one per line; returns the count."""
    stream = stream or sys.stdout
    count = 0
    for finding in findings:
        print(finding.render(), file=stream)
        count += 1
    return count


def to_json(findings: List[Finding]) -> str:
    return json.dumps([dataclasses.asdict(f) for f in findings], indent=2)
