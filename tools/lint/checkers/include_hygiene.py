"""include-hygiene: every header compiles standalone.

Each header under src/ and include/ is compiled as its own translation
unit (`#include "the/header.h"` and nothing else, -fsyntax-only). A header
that only compiles when its includer happens to pull in <vector> first is
a refactoring landmine: reordering includes elsewhere breaks the build at
a distance. Standalone compilation is the strongest self-containedness
check short of modules.

Uses $CXX (else c++, else g++) with the same -std/-I/-D surface as the
real build. Headers compile in parallel, and verdicts are cached in
build/lint_hygiene_cache.json keyed by a content hash of the header plus
every repo-local header it transitively includes — so `lint.py --changed`
only pays for headers whose own include closure actually changed, keeping
the pre-commit loop under the 2 s budget.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from findings import make_finding  # noqa: E402

from . import _util

NAME = "include-hygiene"
DESCRIPTION = "every header must compile as its own translation unit"
FIXABLE = False

ERROR_LINE = re.compile(r"^(?P<file>[^:\s][^:]*):(?P<line>\d+):"
                        r"(?:\d+:)?\s*(?:fatal )?error:\s*(?P<msg>.*)$")
QUOTED_INCLUDE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.M)


def _closure_hash(path: Path, incdirs, memo) -> str:
    """Content hash of `path` plus every repo-local header it transitively
    includes (quoted includes resolved against `incdirs`). System headers
    are deliberately ignored: they change with the toolchain, which the
    compiler id in the cache key already covers."""
    key = str(path)
    if key in memo:
        return memo[key]
    memo[key] = ""  # Break include cycles.
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return ""
    digest = hashlib.sha256(text.encode()).hexdigest()
    parts = [digest]
    for name in QUOTED_INCLUDE.findall(text):
        for incdir in incdirs:
            dep = incdir / name
            if dep.is_file():
                parts.append(_closure_hash(dep, incdirs, memo))
                break
    combined = hashlib.sha256("".join(parts).encode()).hexdigest()
    memo[key] = combined
    return combined


def _cache_path(repo: Path) -> Path:
    return repo / "build" / "lint_hygiene_cache.json"


def _load_cache(repo: Path) -> dict:
    try:
        with open(_cache_path(repo), encoding="utf-8") as f:
            cache = json.load(f)
        return cache if isinstance(cache, dict) else {}
    except (OSError, json.JSONDecodeError):
        return {}


def _store_cache(repo: Path, cache: dict) -> None:
    path = _cache_path(repo)
    try:
        path.parent.mkdir(exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(cache, f)
    except OSError:
        pass  # Cache is best-effort; never fail lint over it.


def _compiler() -> str | None:
    for candidate in (os.environ.get("CXX"), "c++", "g++", "clang++"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _include_name(path: Path, repo: Path, explicit: bool):
    """(-I directory, name to #include) for one header."""
    for root in ("src", "include"):
        rel = _util.rel_to(path, repo / root)
        if rel is not None:
            return repo / root, rel
    if explicit:
        return path.parent, path.name
    return None, None


def _check_one(compiler, incdir, name, path, repo):
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".cc", prefix="lint_hygiene_",
            delete=False) as tu:
        tu.write(f'#include "{name}"\n')
        tu_path = tu.name
    try:
        cmd = [compiler, "-std=c++20", "-fsyntax-only",
               "-I", str(repo / "src"), "-I", str(repo / "include"),
               "-I", str(incdir), "-DJOINEST_CONTRACTS=1", tu_path]
        proc = subprocess.run(cmd, capture_output=True, text=True)
    finally:
        os.unlink(tu_path)
    if proc.returncode == 0:
        return None
    line = 1
    detail = "does not compile standalone"
    for out_line in proc.stderr.splitlines():
        m = ERROR_LINE.match(out_line)
        if m:
            detail = m.group("msg").strip()
            if Path(m.group("file")).name == path.name:
                line = int(m.group("line"))
            break
    return make_finding(NAME, path, line,
                        f"header does not compile standalone: {detail}",
                        repo=repo)


def run(ctx):
    headers = []
    for path in ctx.files:
        if path.suffix != ".h":
            continue
        incdir, name = _include_name(path, ctx.repo, ctx.explicit)
        if incdir is not None:
            headers.append((incdir, name, path))
    if not headers:
        return []
    compiler = _compiler()
    if compiler is None:
        print(f"lint: {NAME}: no C++ compiler on PATH; skipping",
              file=sys.stderr)
        return []

    # Fixture runs skip the cache: they must re-verify every time.
    cache = {} if ctx.explicit else _load_cache(ctx.repo)
    incdirs = [ctx.repo / "src", ctx.repo / "include"]
    memo: dict = {}

    out = []
    to_compile = []
    keys = {}
    for incdir, name, path in headers:
        key = "|".join([str(path), compiler,
                        _closure_hash(path, incdirs + [incdir], memo)])
        keys[path] = key
        hit = cache.get(key)
        if hit is None:
            to_compile.append((incdir, name, path))
        elif not hit.get("ok", False):
            out.append(make_finding(NAME, path, int(hit.get("line", 1)),
                                    str(hit.get("message", "")),
                                    repo=ctx.repo))

    fresh = {}
    if to_compile:
        workers = min(len(to_compile), os.cpu_count() or 2)
        with concurrent.futures.ThreadPoolExecutor(workers) as pool:
            futures = {
                pool.submit(_check_one, compiler, incdir, name, path,
                            ctx.repo): path
                for incdir, name, path in to_compile}
            for future, path in futures.items():
                finding = future.result()
                if finding is None:
                    fresh[keys[path]] = {"ok": True}
                else:
                    fresh[keys[path]] = {"ok": False, "line": finding.line,
                                         "message": finding.message}
                    out.append(finding)
    if fresh and not ctx.explicit:
        cache.update(fresh)
        _store_cache(ctx.repo, cache)
    return out
