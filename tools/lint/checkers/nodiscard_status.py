"""nodiscard-status: every function returning Status/StatusOr is
[[nodiscard]].

Silently dropping a Status is how error paths rot. The rule is satisfied
either way the attribute can be spelled:

  * type-level: `class [[nodiscard]] Status` in common/status.h makes every
    function returning it nodiscard — this is how joinest spells it, so
    individual declarations need no annotation;
  * declaration-level: `[[nodiscard]] Status Frob();` for code whose
    Status-like type is not itself marked.

The checker flags a Status/StatusOr-returning declaration only when neither
holds — which in practice means someone removed the attribute from
common/status.h, and every declaration in src/ lights up at once.

Deliberate drops must be `(void)`-cast with a reason comment;
`(void)expr;` never triggers -Wunused-result, so no suppression is needed
here.

--fix prepends `[[nodiscard]]` to flagged declarations.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from findings import make_finding  # noqa: E402

from . import _util

NAME = "nodiscard-status"
DESCRIPTION = "functions returning Status/StatusOr must be [[nodiscard]]"
FIXABLE = True

NODISCARD_CLASS = re.compile(r"class\s+\[\[nodiscard\]\]\s+(\w+)")
DECL = re.compile(
    r"^\s*(?:(?:static|virtual|inline|constexpr|friend|explicit)\s+)*"
    r"(?:::)?(?:\w+\s*::\s*)*(Status|StatusOr)\s*(?:<[^;{}()]*>)?"
    r"\s+(\w+)\s*\(")


def _nodiscard_types(paths) -> set:
    types = set()
    for path in paths:
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        types.update(NODISCARD_CLASS.findall(text))
    return types


def run(ctx):
    headers = []
    for path in ctx.files:
        if path.suffix != ".h":
            continue
        rel = _util.rel_to(path, ctx.repo)
        if ctx.explicit or (rel is not None and rel.startswith("src/")):
            headers.append(path)

    # Which Status-like class names carry the attribute at the type level.
    # Outside fixture mode the canonical declarations live in
    # common/status.h, which a --changed run may not include — always parse
    # it.
    type_sources = list(headers)
    if not ctx.explicit:
        status_h = ctx.repo / "src" / "common" / "status.h"
        if status_h.is_file():
            type_sources.append(status_h)
    nodiscard = _nodiscard_types(type_sources)

    out = []
    for path in headers:
        lines = _util.read_lines(path)
        fixed = list(lines)
        changed = False
        for lineno, raw, code in _util.iter_code_lines(lines):
            m = DECL.match(code)
            if not m:
                continue
            base = m.group(1)
            if base in nodiscard:
                continue
            prev = lines[lineno - 2] if lineno >= 2 else ""
            if "[[nodiscard]]" in raw or "[[nodiscard]]" in prev:
                continue
            if ctx.fix:
                indent = len(raw) - len(raw.lstrip())
                fixed[lineno - 1] = (raw[:indent] + "[[nodiscard]] "
                                     + raw[indent:])
                changed = True
                continue
            out.append(make_finding(
                NAME, path, lineno,
                f"function '{m.group(2)}' returns {base} without "
                "[[nodiscard]] (and the type is not declared "
                "class [[nodiscard]])", repo=ctx.repo))
        if changed:
            path.write_text("\n".join(fixed) + "\n", encoding="utf-8")
    return out
