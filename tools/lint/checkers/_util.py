"""Small shared helpers for the textual checkers."""

from __future__ import annotations

import pathlib
import re
from typing import Iterator, List, Tuple

LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:\\.|[^"\\])*"')


def read_lines(path: pathlib.Path) -> List[str]:
    return path.read_text(encoding="utf-8", errors="replace").splitlines()


def iter_code_lines(lines: List[str]) -> Iterator[Tuple[int, str, str]]:
    """Yields (lineno, raw, code) where `code` has //-comments, /*...*/
    comments and string-literal contents blanked out (line-granular block
    comment tracking — good enough for lint, not a real lexer)."""
    in_block = False
    for lineno, raw in enumerate(lines, 1):
        code = raw
        if in_block:
            end = code.find("*/")
            if end < 0:
                yield lineno, raw, ""
                continue
            code = " " * (end + 2) + code[end + 2:]
            in_block = False
        # Strip any complete /* ... */ runs, then an unterminated opener.
        code = re.sub(r"/\*.*?\*/", lambda m: " " * len(m.group()), code)
        start = code.find("/*")
        if start >= 0:
            code = code[:start]
            in_block = True
        code = LINE_COMMENT_RE.sub("", code)
        code = STRING_RE.sub('""', code)
        yield lineno, raw, code


def rel_to(path: pathlib.Path, base: pathlib.Path) -> str | None:
    """Posix relpath of `path` under `base`, or None when outside it."""
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return None
