"""raw-mutex: no bare <mutex>/<condition_variable> primitives in src/.

Clang's -Wthread-safety analysis only proves lock disciplines expressed
through annotated types. src/common/thread_annotations.h provides
joinest::Mutex / MutexLock / CondVar — thin std wrappers carrying the
CAPABILITY / SCOPED_CAPABILITY / ACQUIRE / RELEASE attributes — and is the
single sanctioned home of the raw std primitives. A bare std::mutex
anywhere else in src/ is invisible to the analysis: its GUARDED_BY members
silently go unchecked.

Tests and benches are exempt (they simulate external concurrent clients
and have no annotated state of their own).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from findings import make_finding  # noqa: E402

from . import _util

NAME = "raw-mutex"
DESCRIPTION = ("bare std::mutex/lock_guard/condition_variable in src/; "
               "use joinest::Mutex/MutexLock/CondVar")
FIXABLE = False

# The wrapper header IS the sanctioned home of the raw primitives.
ALLOWED = {"src/common/thread_annotations.h"}

RAW_PRIMITIVE = _util.re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|std::condition_variable(?:_any)?\b")
RAW_INCLUDE = _util.re.compile(
    r"#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")


def run(ctx):
    out = []
    for path in ctx.files:
        rel = _util.rel_to(path, ctx.repo)
        if not ctx.explicit:
            if rel is None or not rel.startswith("src/") or rel in ALLOWED:
                continue
        elif rel in ALLOWED:
            continue
        for lineno, raw, code in _util.iter_code_lines(
                _util.read_lines(path)):
            if RAW_INCLUDE.search(code) or RAW_PRIMITIVE.search(code):
                out.append(make_finding(
                    NAME, path, lineno,
                    "raw <mutex> primitive is invisible to Clang "
                    "thread-safety analysis; use joinest::Mutex/MutexLock/"
                    "CondVar (common/thread_annotations.h): "
                    f"{raw.strip()}", repo=ctx.repo))
    return out
