"""banned-functions: libc/stdlib calls with project-approved replacements.

Each ban exists because joinest already has (or requires) a better tool:

  rand()/srand()      hidden global state, weak distribution — use the
                      deterministic engines in common/random.h, which keep
                      experiments reproducible (ROADMAP: every number has a
                      seed).
  strtok()            mutates a hidden static buffer; not reentrant under
                      the shared thread pool — use string_view scanning
                      (see query/lexer.cc for the idiom).
  gmtime()/localtime() return pointers to shared static storage — use the
                      *_r variants.
  unseeded std::mt19937  default-constructed engines produce the same
                      stream everywhere and hide the seed from logs — seed
                      explicitly from the workload/run seed, or use
                      common/random.h.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from findings import make_finding  # noqa: E402

from . import _util

NAME = "banned-functions"
DESCRIPTION = ("rand/strtok/gmtime/unseeded mt19937; "
               "use common/random.h and reentrant APIs")
FIXABLE = False

BANS = [
    (re.compile(r"\b(?:std::)?rand\s*\("),
     "rand() has hidden global state; use common/random.h "
     "(seeded, reproducible)"),
    (re.compile(r"\b(?:std::)?srand\s*\("),
     "srand() seeds hidden global state; use common/random.h"),
    (re.compile(r"\b(?:std::)?strtok\s*\("),
     "strtok() is not reentrant under the shared pool; "
     "use string_view scanning"),
    (re.compile(r"\b(?:std::)?(?:gmtime|localtime)\s*\("),
     "gmtime()/localtime() return shared static storage; use gmtime_r/"
     "localtime_r"),
    # Default-constructed engine: `std::mt19937 g;`, `std::mt19937 g{};`,
    # `std::mt19937()`, `std::mt19937{}`. A seeded form or a
    # reference/pointer/parameter use does not match.
    (re.compile(r"std::mt19937(?:_64)?\s*(?:\w+\s*)?(?:\(\s*\)|\{\s*\}|;)"),
     "unseeded std::mt19937 hides the seed; seed it from the run/workload "
     "seed or use common/random.h"),
]


def run(ctx):
    out = []
    for path in ctx.files:
        rel = _util.rel_to(path, ctx.repo)
        if not ctx.explicit and rel is None:
            continue
        for lineno, raw, code in _util.iter_code_lines(
                _util.read_lines(path)):
            for pattern, why in BANS:
                if pattern.search(code):
                    out.append(make_finding(
                        NAME, path, lineno, f"{why}: {raw.strip()}",
                        repo=ctx.repo))
    return out
