"""metric-name-registry: metric family names match src/obs/metric_names.h.

The telemetry contract between the registry, the bench JSON gates and the
dashboards is carried entirely by string names. A typo on either side does
not crash — it silently creates a second, permanently-zero series. This
checker pins both directions against the single declaration table
(JOINEST_METRIC_NAMES in src/obs/metric_names.h):

  * every name passed to MetricsRegistry::Get{Counter,Gauge,Histogram} —
    directly or through a *_gauge/*_counter helper with a literal first
    argument — must be declared in the table;
  * every declared name must occur somewhere in src/, bench/ or examples/.

Tests are exempt: they exercise the registry with ad-hoc names by design.
This checker always scans the full tree (even under --changed): the
unused-name direction is only meaningful globally, and the scan is cheap.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from findings import make_finding  # noqa: E402

from . import _util

NAME = "metric-name-registry"
DESCRIPTION = ("metric names used in src/bench/examples must match the "
               "src/obs/metric_names.h table, both directions")
FIXABLE = False

TABLE_NAME = "metric_names.h"
DECLARED_RE = re.compile(r"^\s*X\((\w+)\)")
# Direct registry calls and literal-first-arg helpers (e.g. the benches'
# mode_gauge("bench_executor_seconds", ...)).
USE_RES = [
    re.compile(r"Get(?:Counter|Gauge|Histogram)\s*\(\s*\"(\w+)\"", re.S),
    re.compile(r"\b\w*(?:gauge|counter|histogram)\w*\s*\(\s*\"(\w+)\"",
               re.S | re.I),
]
SCAN_ROOTS = ("src", "bench", "examples")


def _table_and_sources(ctx):
    if ctx.explicit:
        table = next((p for p in ctx.files if p.name == TABLE_NAME), None)
        sources = [p for p in ctx.files if p.name != TABLE_NAME]
        return table, sources
    table = ctx.repo / "src" / "obs" / TABLE_NAME
    sources = []
    for root in SCAN_ROOTS:
        base = ctx.repo / root
        if base.is_dir():
            sources.extend(p for p in sorted(base.rglob("*"))
                           if p.suffix in (".h", ".cc")
                           and p.resolve() != table.resolve())
    return (table if table.is_file() else None), sources


def run(ctx):
    table, sources = _table_and_sources(ctx)
    if table is None:
        if ctx.explicit:
            return []  # Fixture set without a table: nothing to check.
        return [make_finding(
            NAME, ctx.repo / "src" / "obs" / TABLE_NAME, 0,
            "declaration table src/obs/metric_names.h is missing",
            repo=ctx.repo)]

    declared = {}  # name -> line in the table
    for lineno, line in enumerate(_util.read_lines(table), 1):
        m = DECLARED_RE.match(line)
        if m:
            declared[m.group(1)] = lineno

    out = []
    all_text = []
    for path in sources:
        text = path.read_text(encoding="utf-8", errors="replace")
        all_text.append(text)
        seen_spans = set()
        for use_re in USE_RES:
            for m in use_re.finditer(text):
                if m.span() in seen_spans:
                    continue
                seen_spans.add(m.span())
                name = m.group(1)
                if name in declared:
                    continue
                line = text.count("\n", 0, m.start()) + 1
                out.append(make_finding(
                    NAME, path, line,
                    f"metric name '{name}' is not declared in "
                    "src/obs/metric_names.h (add it to "
                    "JOINEST_METRIC_NAMES, or fix the typo)",
                    repo=ctx.repo))

    corpus = "\n".join(all_text)
    for name, lineno in sorted(declared.items()):
        if f'"{name}"' not in corpus:
            out.append(make_finding(
                NAME, table, lineno,
                f"metric name '{name}' is declared but never used in "
                f"{'/'.join(SCAN_ROOTS)} (remove it, or fix the typo at "
                "the use site)", repo=ctx.repo))
    return out
