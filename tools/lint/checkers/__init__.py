"""Checker registry for tools/lint/lint.py.

A checker is a module exposing:

    NAME        kebab-case id, used by --checks and in finding output
    DESCRIPTION one line, shown by --list
    FIXABLE     bool: True when run(..., fix=True) can rewrite files
    run(ctx)    -> list[Finding]

`ctx` is lint.Context: the repo root, the candidate file list (already
narrowed by --changed or explicit paths), whether the file list is explicit
(fixture mode — checkers skip their usual src/-scoping), and the fix flag.
Checkers do their own suffix/directory filtering from ctx.files.
"""

from . import banned_functions
from . import estimation_options_pokes
from . import include_hygiene
from . import metric_name_registry
from . import no_raw_threads
from . import nodiscard_status
from . import raw_mutex

ALL_CHECKERS = [
    no_raw_threads,
    raw_mutex,
    nodiscard_status,
    banned_functions,
    include_hygiene,
    metric_name_registry,
    estimation_options_pokes,
]

BY_NAME = {mod.NAME: mod for mod in ALL_CHECKERS}
