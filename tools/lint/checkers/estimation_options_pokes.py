"""estimation-options-pokes: EstimationOptions fields are set through the
facade, not poked directly.

EstimatorFeatures (src/estimator/features.h) is the sanctioned way to turn
estimator behaviour on and off: Session::Options::set_features validates
the combination and the facade translates it into the underlying
EstimationOptions plus the store wiring (Session::EffectiveEstimation).
Code that assigns EstimationOptions fields directly bypasses that
validation and — worse — can hand the estimator a store whose epoch is not
part of the cache digest, silently serving stale cached estimates.

src/estimator/ owns the struct (presets and defaults live there) and is
exempt. The facade's own translation/injection points in
src/service/database.cc carry per-line lint:allow markers. Tests are not
in the lint roots and may poke freely (they drive the raw estimator on
purpose).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from findings import make_finding  # noqa: E402

from . import _util

NAME = "estimation-options-pokes"
DESCRIPTION = ("direct EstimationOptions field assignment outside "
               "src/estimator/; use Session::Options::set_features/"
               "set_preset")
FIXABLE = False

# The struct's home: presets, defaults and the estimator itself.
EXEMPT_PREFIX = "src/estimator/"

# Every EstimationOptions field (estimator/analyzed_query.h). Writes to any
# of them — or to their nested members — count as a poke.
FIELDS = ("transitive_closure", "profile", "rule", "representative",
          "histogram_join_selectivity", "runtime_selectivities", "feedback")

# Variable declarations that introduce an EstimationOptions lvalue:
# `EstimationOptions opts`, `const EstimationOptions& opts`, parameters.
DECL_RE = _util.re.compile(r"\bEstimationOptions\s*[&*]?\s*(\w+)\s*[;=,){]")

# Assignment (not comparison): `= ` with no `=` after and no
# comparison/compound operator before.
_ASSIGN = r"[.\w\[\]]*\s*=(?!=)"

# Sub-objects unique to EstimationOptions: flag these even when the
# variable's declaration is out of sight (other translation unit, member).
UNAMBIGUOUS_RE = _util.re.compile(
    r"\.(?:feedback\.(?:store|fingerprint|min_tables)"
    r"|estimation\.(?:" + "|".join(FIELDS) + r"))" + _ASSIGN)


def run(ctx):
    out = []
    for path in ctx.files:
        rel = _util.rel_to(path, ctx.repo)
        if rel is not None and rel.startswith(EXEMPT_PREFIX):
            continue
        if not ctx.explicit and rel is None:
            continue
        lines = _util.read_lines(path)
        # Pass 1: which identifiers in this file are EstimationOptions?
        tracked = set()
        for _, _, code in _util.iter_code_lines(lines):
            for m in DECL_RE.finditer(code):
                tracked.add(m.group(1))
        poke_re = None
        if tracked:
            poke_re = _util.re.compile(
                r"\b(?:" + "|".join(sorted(tracked)) + r")\.(?:"
                + "|".join(FIELDS) + r")\b" + _ASSIGN)
        # Pass 2: flag assignments through tracked variables or through the
        # unambiguous nested paths.
        for lineno, raw, code in _util.iter_code_lines(lines):
            if UNAMBIGUOUS_RE.search(code) or (poke_re
                                               and poke_re.search(code)):
                out.append(make_finding(
                    NAME, path, lineno,
                    "direct EstimationOptions field assignment bypasses the "
                    "facade's validation and cache-digest wiring; configure "
                    "via Session::Options::set_features / set_preset "
                    "(estimator/features.h): "
                    f"{raw.strip()}", repo=ctx.repo))
    return out
