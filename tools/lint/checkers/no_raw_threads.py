"""no-raw-threads: no std::thread construction in src/ outside the pool.

Every data-parallel subsystem (executor morsels, predicate-transfer
reduction, partitioned ANALYZE, ...) must run its work on the shared
work-stealing pool (src/common/thread_pool.{h,cc}); constructing
std::thread anywhere else in src/ reintroduces per-call thread spawn cost
and lets concurrent sessions oversubscribe the machine — exactly what the
pool exists to prevent. Benches and tests ARE the concurrent clients, so
they may spawn std::thread freely to simulate them.

Allowed uses of the token "std::thread" anywhere:
  * std::thread::hardware_concurrency()  (sizing queries)
  * std::this_thread::...                (yield/sleep; different type)
  * std::thread::id                      (identity checks, no spawn)
  * mentions in comments or #include lines
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from findings import make_finding  # noqa: E402

from . import _util

NAME = "no-raw-threads"
DESCRIPTION = ("std::thread outside common/thread_pool.{h,cc}; "
               "use ThreadPool/TaskGroup")
FIXABLE = False

# Files allowed to construct threads: the pool itself.
ALLOWED = {"src/common/thread_pool.h", "src/common/thread_pool.cc"}

# The std::thread type NOT followed by :: (which would be
# hardware_concurrency, ::id, etc.). std::this_thread never matches.
RAW_THREAD = _util.re.compile(r"std::thread\b(?!::)")


def run(ctx):
    out = []
    for path in ctx.files:
        rel = _util.rel_to(path, ctx.repo)
        if not ctx.explicit:
            if rel is None or not rel.startswith("src/") or rel in ALLOWED:
                continue
        elif rel in ALLOWED:
            continue
        for lineno, raw, code in _util.iter_code_lines(
                _util.read_lines(path)):
            if raw.lstrip().startswith("#include"):
                continue
            if RAW_THREAD.search(code):
                out.append(make_finding(
                    NAME, path, lineno,
                    "raw std::thread; run the work on the shared pool "
                    "(ThreadPool::Submit / TaskGroup, see docs/EXECUTOR.md): "
                    f"{raw.strip()}", repo=ctx.repo))
    return out
