// Fixture: uses std::string without including <string> — compiles only
// when the includer pulled it in first. The include-hygiene checker must
// flag it.
#ifndef LINT_FIXTURE_BAD_HYGIENE_H_
#define LINT_FIXTURE_BAD_HYGIENE_H_

struct Named {
  std::string name;
};

#endif
