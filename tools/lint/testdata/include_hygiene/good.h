// Fixture: self-contained header — the include-hygiene checker must
// accept it.
#ifndef LINT_FIXTURE_GOOD_HYGIENE_H_
#define LINT_FIXTURE_GOOD_HYGIENE_H_

#include <string>

struct Named {
  std::string name;
};

#endif
