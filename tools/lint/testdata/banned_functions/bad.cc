// Fixture: one call per ban — rand, srand, strtok, gmtime, and an
// unseeded std::mt19937. The banned-functions checker must flag all five.
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <random>

int Roll() {
  srand(42);
  return rand() % 6;
}

char* FirstToken(char* s) {
  return strtok(s, ",");
}

tm* NowUtc() {
  time_t t = time(nullptr);
  return gmtime(&t);
}

unsigned Draw() {
  std::mt19937 gen;
  return gen();
}
