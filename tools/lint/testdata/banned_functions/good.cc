// Fixture: the approved replacements — seeded engines, reentrant APIs —
// plus near-miss identifiers (morsel_rand, operand) and a comment
// mentioning rand(). The banned-functions checker must stay silent.
#include <ctime>
#include <random>
#include <string_view>

// rand() would be wrong here; we take the seed explicitly instead.

unsigned Draw(unsigned long long seed) {
  std::mt19937 gen(static_cast<std::mt19937::result_type>(seed));
  return gen();
}

unsigned DrawFrom(std::mt19937& gen) {  // Reference parameter: no engine.
  return gen();
}

int morsel_rand(int x) { return x; }  // Identifier containing "rand".

int UseOperand(int operand) { return morsel_rand(operand); }

tm NowUtc() {
  time_t t = time(nullptr);
  tm out {};
  gmtime_r(&t, &out);
  return out;
}

std::string_view FirstToken(std::string_view s) {
  return s.substr(0, s.find(','));
}
