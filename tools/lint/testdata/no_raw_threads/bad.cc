// Fixture: constructs a raw std::thread — the no-raw-threads checker must
// flag it. (Never compiled; scanned textually by tests/lint_test.cc.)
#include <thread>

void SpawnWorker() {
  std::thread worker([] {});
  worker.join();
}
