// Fixture: every allowed use of the token "std::thread" — sizing queries,
// this_thread, thread::id, comments — plus pool-based parallelism. The
// no-raw-threads checker must stay silent.
#include <thread>

// A comment mentioning std::thread construction is fine.

unsigned PoolSize() {
  return std::thread::hardware_concurrency();
}

void YieldOnce() {
  std::this_thread::yield();
}

std::thread::id SelfId() {
  return std::this_thread::get_id();
}
