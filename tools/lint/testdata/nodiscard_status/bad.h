// Fixture: a Status type WITHOUT the type-level [[nodiscard]] and
// declarations without the declaration-level attribute — the
// nodiscard-status checker must flag Open() and Load().
#ifndef LINT_FIXTURE_BAD_STATUS_H_
#define LINT_FIXTURE_BAD_STATUS_H_

class Status {};
template <typename T>
class StatusOr {};

Status Open(const char* path);
StatusOr<int> Load(const char* path);

#endif
