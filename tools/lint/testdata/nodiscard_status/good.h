// Fixture: both spellings the nodiscard-status checker accepts — the
// type-level attribute (joinest's style, covers every declaration) and the
// declaration-level attribute.
#ifndef LINT_FIXTURE_GOOD_STATUS_H_
#define LINT_FIXTURE_GOOD_STATUS_H_

class [[nodiscard]] Status {};
template <typename T>
class StatusOr {};

Status Open(const char* path);            // Covered by the type.
[[nodiscard]] StatusOr<int> Load(const char* path);
[[nodiscard]]
StatusOr<long> LoadBig(const char* path);  // Attribute on the line above.

#endif
