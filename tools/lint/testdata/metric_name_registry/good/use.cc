// Fixture: every used name is declared (one direct registry call, one
// literal-first-arg helper like the benches use) and every declared name
// is used — the checker must stay silent.
struct R {
  int& GetCounter(const char* name, const char* help);
};

static void mode_gauge(const char* name, double value);

void Touch(R& reg) {
  reg.GetCounter("fixture_runs_total", "direct registration");
  mode_gauge("fixture_mode_gauge", 1.0);
}
