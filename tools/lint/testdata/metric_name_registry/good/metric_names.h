// Fixture declaration table matching good/use.cc exactly.
#define JOINEST_METRIC_NAMES(X) \
  X(fixture_runs_total)         \
  X(fixture_mode_gauge)
