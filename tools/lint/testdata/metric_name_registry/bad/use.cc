// Fixture: registers the declared fixture_runs_total, but also a
// misspelled fixture_run_total (undeclared) — the checker must flag the
// typo here and the unused name in metric_names.h.
struct R {
  int& GetCounter(const char* name, const char* help);
};

void Touch(R& reg) {
  reg.GetCounter("fixture_runs_total", "ok: declared and used");
  reg.GetCounter("fixture_run_total", "typo: not in the table");
}
