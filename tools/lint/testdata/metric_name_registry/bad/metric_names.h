// Fixture declaration table: declares a name nobody uses
// (fixture_unused_total) while the code uses an undeclared one — the
// metric-name-registry checker must flag both directions.
#define JOINEST_METRIC_NAMES(X) \
  X(fixture_runs_total)         \
  X(fixture_unused_total)
