// Fixture: direct EstimationOptions pokes — the estimation-options-pokes
// checker must flag the tracked-variable field writes and the unambiguous
// nested feedback/estimation paths.
#include "estimator/analyzed_query.h"

namespace joinest {

void Configure(OptimizerOptions& optimizer,
               std::shared_ptr<FeedbackStore> store) {
  EstimationOptions options;
  options.histogram_join_selectivity = true;
  options.transitive_closure = false;
  options.rule = SelectivityRule::kSmallest;
  options.feedback.store = store;
  options.feedback.min_tables = 2;
  optimizer.estimation.runtime_selectivities = nullptr;
}

}  // namespace joinest
