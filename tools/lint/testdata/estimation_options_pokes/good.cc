// Fixture: the sanctioned configuration surface — the
// estimation-options-pokes checker must stay silent. EstimatorFeatures is
// a different type (the facade's value type), comparisons are not writes,
// and whole-struct assignment through set_estimation is the facade's own
// documented escape hatch.
#include "estimator/features.h"
#include "service/database.h"

namespace joinest {

Session::Options Configure(bool feedback) {
  EstimatorFeatures features = EstimatorFeatures::PaperFaithful();
  features.feedback = feedback;
  features.runtime_selectivities = true;
  Session::Options options;
  options.set_preset(AlgorithmPreset::kELS);
  options.set_features(features);
  return options;
}

bool IsPaperFaithful(const EstimationOptions& options) {
  // Reads and comparisons of EstimationOptions fields are fine.
  return options.transitive_closure &&
         options.feedback.store == nullptr &&
         options.runtime_selectivities == nullptr;
}

}  // namespace joinest
