// Fixture: bare <mutex> primitives — the raw-mutex checker must flag the
// include, the mutex member, the lock_guard and the condition_variable.
#include <condition_variable>
#include <mutex>

struct Queue {
  std::mutex mu;
  std::condition_variable cv;
};

void Push(Queue& q) {
  std::lock_guard<std::mutex> lock(q.mu);
  q.cv.notify_one();
}
