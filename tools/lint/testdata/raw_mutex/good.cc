// Fixture: the annotated wrappers — the raw-mutex checker must stay
// silent. Mentions of std::mutex in comments are fine too.
#include "common/thread_annotations.h"

struct Queue {
  joinest::Mutex mu;
  joinest::CondVar cv;
  int depth JOINEST_GUARDED_BY(mu) = 0;
};

void Push(Queue& q) {
  joinest::MutexLock lock(q.mu);
  ++q.depth;
  q.cv.NotifyOne();
}
