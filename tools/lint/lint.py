#!/usr/bin/env python3
"""joinest's unified lint driver.

Runs project-specific checkers that the compiler cannot express — thread
discipline, error-handling contracts, header hygiene, the metric-name
registry — and reports every problem as `path:line: [checker] message`.
Registered as the `lint` ctest (label: analysis) and as a stage of
tools/run_static_analysis.sh.

Usage:
  lint.py                      check the default roots (src/ bench/
                               examples/ include/)
  lint.py --changed            only files touched vs HEAD (plus untracked);
                               the fast pre-commit loop
  lint.py PATH...              check exactly these files (fixture mode:
                               checkers drop their src/-only scoping)
  lint.py --checks a,b         run only the named checkers
  lint.py --list               list checkers and exit
  lint.py --fix                let fixable checkers rewrite files in place
  lint.py --json               machine-readable findings on stdout
  lint.py --write-baseline     accept current findings into the baseline

Suppressions: a finding is waived when its line — or the line above it —
contains `lint:allow(<checker>)`. Use sparingly and leave the reason next
to the marker. Whole findings can also be grandfathered in
tools/lint/lint_baseline.txt (one baseline_key per line, regenerated with
--write-baseline); the baseline ships empty and should stay that way.

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import subprocess
import sys
from typing import List

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import checkers  # noqa: E402
from findings import Finding, print_findings, to_json  # noqa: E402

REPO = pathlib.Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO / "tools" / "lint" / "lint_baseline.txt"

# Roots scanned by default; checkers narrow further (e.g. raw-mutex is
# src/-only because tests and benches simulate external clients).
DEFAULT_ROOTS = ("src", "bench", "examples", "include")
SOURCE_SUFFIXES = (".h", ".cc")

ALLOW_RE = re.compile(r"lint:allow\(([a-z0-9_,\- ]+)\)")


@dataclasses.dataclass
class Context:
    repo: pathlib.Path
    files: List[pathlib.Path]  # absolute, existing, .h/.cc
    explicit: bool  # True when the user listed paths (fixture mode)
    fix: bool = False


def discover_default_files() -> List[pathlib.Path]:
    out = []
    for root in DEFAULT_ROOTS:
        base = REPO / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                out.append(path)
    return out


def discover_changed_files() -> List[pathlib.Path]:
    """Files differing from HEAD plus untracked files, under the roots."""
    names: set[str] = set()
    for cmd in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(cmd, cwd=REPO, capture_output=True,
                                  text=True, check=True)
        except (OSError, subprocess.CalledProcessError) as e:
            print(f"lint: cannot determine changed files ({e}); "
                  "falling back to a full scan", file=sys.stderr)
            return discover_default_files()
        names.update(line.strip() for line in proc.stdout.splitlines()
                     if line.strip())
    out = []
    for name in sorted(names):
        path = REPO / name
        if (path.suffix in SOURCE_SUFFIXES and path.is_file()
                and name.split("/", 1)[0] in DEFAULT_ROOTS):
            out.append(path)
    return out


def suppressed(finding: Finding, repo: pathlib.Path) -> bool:
    """True when the finding's line (or the one above) carries
    lint:allow(<checker>)."""
    if finding.line <= 0:
        candidates = [1]
    else:
        candidates = [finding.line, finding.line - 1]
    path = repo / finding.path
    try:
        lines = path.read_text(encoding="utf-8",
                               errors="replace").splitlines()
    except OSError:
        return False
    for lineno in candidates:
        if 1 <= lineno <= len(lines):
            m = ALLOW_RE.search(lines[lineno - 1])
            if m and finding.checker in re.split(r"[,\s]+", m.group(1)):
                return True
    return False


def load_baseline() -> set[str]:
    if not BASELINE_PATH.is_file():
        return set()
    keys = set()
    for line in BASELINE_PATH.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            keys.add(line)
    return keys


def write_baseline(findings: List[Finding]) -> None:
    lines = ["# Grandfathered lint findings (one baseline_key per line).",
             "# Regenerate with tools/lint/lint.py --write-baseline.",
             "# Keep this empty: fix or lint:allow() instead of baselining."]
    lines += sorted({f.baseline_key() for f in findings})
    BASELINE_PATH.write_text("\n".join(lines) + "\n", encoding="utf-8")


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, add_help=True,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="explicit files to check (fixture mode)")
    parser.add_argument("--checks", default="",
                        help="comma-separated checker names (default: all)")
    parser.add_argument("--changed", action="store_true",
                        help="only files changed vs HEAD + untracked")
    parser.add_argument("--fix", action="store_true",
                        help="let fixable checkers rewrite files")
    parser.add_argument("--list", action="store_true", dest="list_checkers",
                        help="list available checkers and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current findings as the baseline")
    args = parser.parse_args(argv)

    if args.list_checkers:
        for mod in checkers.ALL_CHECKERS:
            fix = " (--fix)" if mod.FIXABLE else ""
            print(f"{mod.NAME:24s} {mod.DESCRIPTION}{fix}")
        return 0

    if args.checks:
        selected = []
        for name in args.checks.split(","):
            name = name.strip()
            if name not in checkers.BY_NAME:
                known = ", ".join(sorted(checkers.BY_NAME))
                print(f"lint: unknown checker '{name}' (known: {known})",
                      file=sys.stderr)
                return 2
            selected.append(checkers.BY_NAME[name])
    else:
        selected = checkers.ALL_CHECKERS

    if args.paths:
        files = []
        for raw in args.paths:
            path = pathlib.Path(raw)
            if path.is_dir():
                files.extend(p for p in sorted(path.rglob("*"))
                             if p.suffix in SOURCE_SUFFIXES)
            elif path.is_file():
                files.append(path)
            else:
                print(f"lint: no such file: {raw}", file=sys.stderr)
                return 2
        files = [p.resolve() for p in files]
        explicit = True
    elif args.changed:
        files = discover_changed_files()
        explicit = False
    else:
        files = discover_default_files()
        explicit = False

    ctx = Context(repo=REPO, files=files, explicit=explicit, fix=args.fix)

    all_findings: List[Finding] = []
    for mod in selected:
        try:
            all_findings.extend(mod.run(ctx))
        except Exception as e:  # a broken checker must fail loudly
            print(f"lint: checker {mod.NAME} crashed: {e!r}", file=sys.stderr)
            return 2

    all_findings.sort(key=lambda f: (f.path, f.line, f.checker))

    if args.write_baseline:
        write_baseline(all_findings)
        print(f"lint: wrote {len(all_findings)} finding(s) to "
              f"{BASELINE_PATH.relative_to(REPO)}")
        return 0

    baseline = load_baseline()
    visible = [f for f in all_findings
               if f.baseline_key() not in baseline
               and not suppressed(f, REPO)]

    if args.json:
        print(to_json(visible))
        return 1 if visible else 0

    count = print_findings(visible)
    suppressed_count = len(all_findings) - count
    names = ",".join(mod.NAME for mod in selected)
    if count:
        print(f"\nlint: {count} finding(s) "
              f"({suppressed_count} suppressed/baselined) from [{names}] "
              f"over {len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"lint: clean ({suppressed_count} suppressed/baselined) "
          f"[{names}] over {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
