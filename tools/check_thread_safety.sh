#!/usr/bin/env bash
# Clang thread-safety gate: build src/ with -Wthread-safety
# -Wthread-safety-beta -Werror so every lock discipline declared through
# common/thread_annotations.h (GUARDED_BY / REQUIRES / ACQUIRE / ...) is
# machine-checked. The annotations are no-ops under GCC, so this gate is the
# only place they are actually *proved* — run it whenever concurrency code
# changes.
#
# Skips with exit code 77 (ctest SKIP_RETURN_CODE) when no Clang toolchain
# is installed: the annotations still compile away cleanly under GCC (the
# tier-1 build covers that), the proof just waits for a clang host.
#
# Usage: tools/check_thread_safety.sh [build-root]
#   build-root defaults to build-tsafety. CLANGXX / CLANGCC override the
#   compiler lookup.

set -euo pipefail

cd "$(dirname "$0")/.."

root="${1:-build-tsafety}"

find_clang() {
  if [[ -n "${CLANGXX:-}" ]] && command -v "${CLANGXX}" >/dev/null 2>&1; then
    echo "${CLANGXX}"
    return 0
  fi
  local candidate
  for candidate in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
                   clang++-16 clang++-15 clang++-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      echo "${candidate}"
      return 0
    fi
  done
  return 1
}

if ! clangxx="$(find_clang)"; then
  echo "clang_thread_safety: SKIPPED (no clang++ on PATH;" \
       "annotations compile as no-ops under this toolchain)"
  exit 77
fi

echo "clang_thread_safety: using ${clangxx}"
cmake -B "${root}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_COMPILER="${clangxx}" \
  -DJOINEST_WERROR=ON \
  -DJOINEST_CONTRACTS=ON >/dev/null

# src/ only: the libraries hold every annotated structure. joinest_service
# transitively builds the whole pipeline; joinest_workloads is the one
# library outside its closure.
if cmake --build "${root}" -j "$(nproc)" \
     --target joinest_service joinest_workloads \
     >"${root}/thread_safety_build.log" 2>&1; then
  echo "clang_thread_safety: clean" \
       "(-Wthread-safety -Wthread-safety-beta -Werror)"
else
  echo "clang_thread_safety: FAILED (tail of ${root}/thread_safety_build.log)"
  tail -n 60 "${root}/thread_safety_build.log"
  exit 1
fi
