#!/usr/bin/env python3
"""Validate an NDJSON querylog exported by the flight recorder.

Checks the record schema Database::QueryLogNdjson() promises (see
docs/OBSERVABILITY.md, "Flight recorder & accuracy monitoring"):

  * every line is a standalone JSON object,
  * required fields with the right types: seq (int), api (one of
    estimate/execute/explain_analyze), fingerprint/snapshot_version (int),
    cache_hit (bool), rule (non-empty string), estimated_rows (number),
    actual_rows (number; -1 when not executed), q_error (number), per_rule
    (array of {rule, rows, q_error}), latency (object with
    parse/estimate/pt/execute/total _seconds),
  * seq strictly increases down the file (capture order),
  * executed records (actual_rows >= 0) carry q_error >= 1 and per-rule
    q-errors >= 1; unexecuted records carry q_error == 0,
  * q_error is consistent with (estimated_rows, actual_rows) when both are
    >= 1 (QErrorValue floors at 1): q = max(est/act, act/est),
  * optional join_levels rows carry per-rule estimates and q-errors.

Problems are reported in the unified lint format
(`path:line: [querylog-schema] message`, see tools/lint/findings.py) so
every `ctest -L analysis` failure reads the same way.

Usage: check_querylog.py LOG.ndjson [LOG2.ndjson ...]
           [--min-records N] [--require-cache-hit] [--require-executed]
Exits non-zero on the first invalid file.
"""

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent / "lint"))
from findings import Finding  # noqa: E402

APIS = ("estimate", "execute", "explain_analyze")
LATENCY_KEYS = ("parse_seconds", "estimate_seconds", "pt_seconds",
                "execute_seconds", "total_seconds")
# q_error is recomputed from (estimated_rows, actual_rows) and must agree to
# this relative tolerance.
QERROR_RTOL = 1e-9


def fail(path, line, message):
    finding = Finding(checker="querylog-schema", path=str(path), line=line,
                      message=message)
    print(finding.render(), file=sys.stderr)
    return 1


def check_number(record, key):
    value = record.get(key)
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_record(path, lineno, record):
    if not isinstance(record, dict):
        return fail(path, lineno, "record must be a JSON object")
    if not isinstance(record.get("seq"), int):
        return fail(path, lineno, "seq must be an integer")
    if record.get("api") not in APIS:
        return fail(path, lineno, f"api must be one of {APIS}")
    for key in ("fingerprint", "snapshot_version"):
        if not isinstance(record.get(key), int):
            return fail(path, lineno, f"{key} must be an integer")
    if not isinstance(record.get("cache_hit"), bool):
        return fail(path, lineno, "cache_hit must be a boolean")
    if not isinstance(record.get("rule"), str) or not record["rule"]:
        return fail(path, lineno, "rule must be a non-empty string")
    for key in ("estimated_rows", "actual_rows", "q_error"):
        if not check_number(record, key):
            return fail(path, lineno, f"{key} must be a number")

    per_rule = record.get("per_rule")
    if not isinstance(per_rule, list):
        return fail(path, lineno, "per_rule must be an array")
    for i, rule in enumerate(per_rule):
        if (not isinstance(rule, dict)
                or not isinstance(rule.get("rule"), str)
                or not check_number(rule, "rows")
                or not check_number(rule, "q_error")):
            return fail(path, lineno,
                        f"per_rule[{i}] needs rule/rows/q_error")

    latency = record.get("latency")
    if not isinstance(latency, dict):
        return fail(path, lineno, "latency must be an object")
    for key in LATENCY_KEYS:
        value = latency.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            return fail(path, lineno,
                        f"latency.{key} must be a non-negative number")

    executed = record["actual_rows"] >= 0
    if executed:
        if record["q_error"] < 1:
            return fail(path, lineno,
                        "executed record must carry q_error >= 1")
        # QErrorValue floors both operands at 1, so the recomputation only
        # matches the raw ratio when neither side was floored.
        est, act = record["estimated_rows"], record["actual_rows"]
        if est >= 1 and act >= 1:
            expected = max(est / act, act / est)
            if abs(record["q_error"] - expected) > QERROR_RTOL * expected:
                return fail(
                    path, lineno,
                    f"q_error {record['q_error']} inconsistent with "
                    f"estimate {est} / actual {act} (expected {expected})")
        for i, rule in enumerate(per_rule):
            if rule["q_error"] < 1:
                return fail(path, lineno,
                            f"per_rule[{i}]: executed record must carry "
                            f"q_error >= 1")
    elif record["q_error"] != 0:
        return fail(path, lineno,
                    "unexecuted record must carry q_error == 0")

    join_levels = record.get("join_levels", [])
    if not isinstance(join_levels, list):
        return fail(path, lineno, "join_levels must be an array")
    for i, level in enumerate(join_levels):
        if not isinstance(level, dict) or not isinstance(
                level.get("level"), int):
            return fail(path, lineno, f"join_levels[{i}] needs integer level")
        for key in ("actual", "est_ls", "est_m", "est_ss",
                    "q_ls", "q_m", "q_ss"):
            if not check_number(level, key):
                return fail(path, lineno,
                            f"join_levels[{i}].{key} must be a number")
    return 0


def check_file(path, args):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return fail(path, 0, f"cannot read: {e}")

    records = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(path, lineno, f"invalid JSON: {e}")
        if check_record(path, lineno, record):
            return 1
        records.append(record)

    seqs = [r["seq"] for r in records]
    if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
        return fail(path, 0, "seq must strictly increase down the file")

    if len(records) < args.min_records:
        return fail(path, 0,
                    f"expected at least {args.min_records} records, "
                    f"found {len(records)}")
    if args.require_cache_hit and not any(r["cache_hit"] for r in records):
        return fail(path, 0,
                    "expected at least one warm (cache-hit) record")
    if args.require_executed and not any(
            r["actual_rows"] >= 0 for r in records):
        return fail(path, 0, "expected at least one executed record")

    executed = sum(1 for r in records if r["actual_rows"] >= 0)
    hits = sum(1 for r in records if r["cache_hit"])
    print(f"{path}: OK ({len(records)} records, {executed} executed, "
          f"{hits} cache hits)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("logs", nargs="+", help="NDJSON querylog files")
    parser.add_argument("--min-records", type=int, default=1,
                        help="fail when a file has fewer records")
    parser.add_argument("--require-cache-hit", action="store_true",
                        help="fail unless some record is a cache hit")
    parser.add_argument("--require-executed", action="store_true",
                        help="fail unless some record was executed")
    args = parser.parse_args()
    for path in args.logs:
        if check_file(path, args):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
