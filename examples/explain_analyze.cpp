// EXPLAIN ANALYZE on the paper's §8 experiment query:
//
//   SELECT COUNT(*) FROM S, M, B, G
//   WHERE S.s = M.m AND M.m = B.b AND B.b = G.g AND S.s < 100
//
// whose true result size is exactly 100·scale by construction. The report
// shows the executed operator tree with estimated vs. actual cardinalities
// and self/inclusive timings, the per-rule (LS/M/SS) estimate and q-error at
// every join level, and the span-timing summary of the traced run.
//
// Flags:
//   --json          print the report as JSON instead of text
//   --trace PATH    write the Chrome trace-event JSON to PATH
//                   (load in chrome://tracing, validate with
//                   tools/check_trace.py)
//   --metrics       also print the metrics registry's Prometheus text
//                   (the estimator_qerror{rule=...} histograms)
//   --scale N       paper dataset scale factor (default 1)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/json_writer.h"
#include "estimator/presets.h"
#include "obs/explain_analyze.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "storage/datasets.h"

using namespace joinest;  // NOLINT - example code

int main(int argc, char** argv) {
  bool as_json = false;
  bool with_metrics = false;
  std::string trace_path;
  int64_t scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      with_metrics = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atoll(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--metrics] [--trace PATH] "
                   "[--scale N]\n",
                   argv[0]);
      return 2;
    }
  }

  // A failed contract anywhere below dumps the active trace before
  // aborting — the post-mortem story the trace buffer exists for.
  InstallCheckFailureTraceDump();

  Catalog catalog;
  PaperDatasetOptions dataset;
  dataset.scale = scale;
  Status status = BuildPaperDataset(catalog, dataset);
  JOINEST_CHECK(status.ok()) << status;

  char sql[256];
  std::snprintf(sql, sizeof(sql),
                "SELECT COUNT(*) FROM S, M, B, G WHERE S.s = M.m AND "
                "M.m = B.b AND B.b = G.g AND S.s < %lld",
                static_cast<long long>(100 * scale));
  auto query = ParseQuery(catalog, sql);
  JOINEST_CHECK(query.ok()) << query.status();

  ExplainAnalyzeOptions options;
  options.estimation = PresetOptions(AlgorithmPreset::kELS);
  auto report = ExplainAnalyzeQuery(catalog, *query, options);
  JOINEST_CHECK(report.ok()) << report.status();

  if (as_json) {
    std::printf("%s\n", report->ToJson().c_str());
  } else {
    std::printf("%s", report->FormatText().c_str());
  }
  if (!trace_path.empty()) {
    JOINEST_CHECK(!report->trace_json.empty())
        << "no trace captured (was a session already active?)";
    JOINEST_CHECK(WriteTextFile(trace_path, report->trace_json))
        << "cannot write " << trace_path;
    std::fprintf(stderr, "trace written to %s\n", trace_path.c_str());
  }
  if (with_metrics) {
    std::printf("%s", MetricsRegistry::Global().PrometheusText().c_str());
  }
  return 0;
}
