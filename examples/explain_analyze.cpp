// EXPLAIN ANALYZE on the paper's §8 experiment query:
//
//   SELECT COUNT(*) FROM S, M, B, G
//   WHERE S.s = M.m AND M.m = B.b AND B.b = G.g AND S.s < 100
//
// whose true result size is exactly 100·scale by construction. The report
// shows the executed operator tree with estimated vs. actual cardinalities
// and self/inclusive timings, the per-rule (LS/M/SS) estimate and q-error at
// every join level, and the span-timing summary of the traced run.
//
// Runs through the service facade: a Database holds the dataset snapshot
// and a Session drives ExplainAnalyze, so the optimized plan is memoised
// in the service cache (visible in --metrics as service_cache_*).
//
// Flags:
//   --json          print the report as JSON instead of text
//   --trace PATH    write the Chrome trace-event JSON to PATH
//                   (load in chrome://tracing, validate with
//                   tools/check_trace.py)
//   --metrics       also print the metrics registry's Prometheus text
//                   (the estimator_qerror{rule=...} histograms)
//   --querylog PATH write the flight-recorder querylog as NDJSON to PATH
//                   (validate with tools/check_querylog.py)
//   --scale N       paper dataset scale factor (default 1)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "common/json_writer.h"
#include "joinest/joinest.h"
#include "obs/trace.h"

using namespace joinest;  // NOLINT - example code

int main(int argc, char** argv) {
  bool as_json = false;
  bool with_metrics = false;
  std::string trace_path;
  std::string querylog_path;
  int64_t scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      with_metrics = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--querylog") == 0 && i + 1 < argc) {
      querylog_path = argv[++i];
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atoll(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--metrics] [--trace PATH] "
                   "[--querylog PATH] [--scale N]\n",
                   argv[0]);
      return 2;
    }
  }

  // A failed contract anywhere below dumps the active trace before
  // aborting — the post-mortem story the trace buffer exists for.
  InstallCheckFailureTraceDump();

  // Flight recorder on at sample rate 1 so --querylog has the full history
  // (paper-faithful output is unaffected: capture happens after the run).
  Database db{Database::Options().set_recorder(
      FlightRecorder::Options().set_enabled(true))};
  {
    Catalog staged;
    PaperDatasetOptions dataset;
    dataset.scale = scale;
    Status status = BuildPaperDataset(staged, dataset);
    JOINEST_CHECK(status.ok()) << status;
    status = db.ImportTables(std::move(staged));
    JOINEST_CHECK(status.ok()) << status;
  }

  auto session = db.CreateSession(
      Session::Options().set_preset(AlgorithmPreset::kELS));
  JOINEST_CHECK(session.ok()) << session.status();

  char sql[256];
  std::snprintf(sql, sizeof(sql),
                "SELECT COUNT(*) FROM S, M, B, G WHERE S.s = M.m AND "
                "M.m = B.b AND B.b = G.g AND S.s < %lld",
                static_cast<long long>(100 * scale));
  auto report = session->ExplainAnalyze(sql);
  JOINEST_CHECK(report.ok()) << report.status();

  if (as_json) {
    std::printf("%s\n", report->ToJson().c_str());
  } else {
    std::printf("%s", report->FormatText().c_str());
  }
  if (!trace_path.empty()) {
    JOINEST_CHECK(!report->trace_json.empty())
        << "no trace captured (was a session already active?)";
    JOINEST_CHECK(WriteTextFile(trace_path, report->trace_json))
        << "cannot write " << trace_path;
    std::fprintf(stderr, "trace written to %s\n", trace_path.c_str());
  }
  if (!querylog_path.empty()) {
    JOINEST_CHECK(WriteTextFile(querylog_path, db.QueryLogNdjson()))
        << "cannot write " << querylog_path;
    std::fprintf(stderr, "querylog written to %s\n", querylog_path.c_str());
  }
  if (with_metrics) {
    std::printf("%s", MetricsRegistry::Global().PrometheusText().c_str());
  }
  return 0;
}
