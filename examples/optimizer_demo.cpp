// Optimizer demo on the paper's §8 experiment query:
//
//   SELECT COUNT(*) FROM S, M, B, G
//   WHERE s = m AND m = b AND b = g AND s < 100
//
// Optimizes the query under each of the paper's four algorithm
// configurations, prints the chosen plan, its estimated intermediate result
// sizes, and the real execution time of each plan. Run with an integer
// argument to scale the dataset (default 1 = the paper's cardinalities).

#include <cstdio>
#include <cstdlib>

#include "estimator/presets.h"
#include "executor/execute.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "storage/datasets.h"

using namespace joinest;  // NOLINT - example code

int main(int argc, char** argv) {
  PaperDatasetOptions dataset;
  if (argc > 1) dataset.scale = std::atoll(argv[1]);
  JOINEST_CHECK(dataset.scale >= 1) << "scale must be >= 1";

  Catalog catalog;
  Status status = BuildPaperDataset(catalog, dataset);
  JOINEST_CHECK(status.ok()) << status;

  char sql[256];
  std::snprintf(sql, sizeof(sql),
                "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND "
                "b = g AND s < %lld",
                static_cast<long long>(100 * dataset.scale));
  auto query = ParseQuery(catalog, sql);
  JOINEST_CHECK(query.ok()) << query.status();
  std::printf("Query: %s\n\n", sql);

  for (AlgorithmPreset preset : PaperPresets()) {
    OptimizerOptions options;
    options.estimation = PresetOptions(preset);
    auto plan = OptimizeQuery(catalog, *query, options);
    JOINEST_CHECK(plan.ok()) << plan.status();

    std::printf("--- %s ---\n", PresetName(preset));
    std::printf("%s", PlanToString(*plan->root, catalog, *query).c_str());
    std::printf("estimated intermediate sizes:");
    for (double e : plan->intermediate_estimates) std::printf(" %g", e);
    std::printf("\n");

    auto result = ExecutePlan(catalog, *query, *plan->root);
    JOINEST_CHECK(result.ok()) << result.status();
    std::printf("COUNT(*) = %lld, executed in %.1f ms\n\n",
                static_cast<long long>(result->count),
                result->seconds * 1e3);
  }
  return 0;
}
