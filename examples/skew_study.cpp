// Skew exploration (paper §9 future work: relaxing the uniformity
// assumption).
//
// Generates two tables whose join columns follow Zipf(theta) for increasing
// theta, and compares the true join size with the ELS estimate — with and
// without histograms on a range-restricted column. Uniform data (theta = 0)
// validates the estimator; growing theta shows where the uniformity
// assumption starts to bite.

#include <cstdio>

#include "common/random.h"
#include "estimator/presets.h"
#include "executor/execute.h"
#include "query/parser.h"
#include "storage/analyze.h"
#include "storage/datagen.h"

using namespace joinest;  // NOLINT - example code

namespace {

Catalog BuildCatalog(double theta, AnalyzeOptions::HistogramKind histogram) {
  Rng rng(1234 + static_cast<uint64_t>(theta * 100));
  AnalyzeOptions analyze;
  analyze.histogram_kind = histogram;
  analyze.histogram_buckets = 32;

  Catalog catalog;
  Table t1 = Table::FromColumns(
      Schema({{"a", TypeKind::kInt64}}),
      {ToValueColumn(MakeZipfColumn(20000, 1000, theta, rng))});
  Table t2 = Table::FromColumns(
      Schema({{"b", TypeKind::kInt64}}),
      {ToValueColumn(MakeZipfColumn(5000, 500, theta, rng))});
  JOINEST_CHECK(catalog.AddTable("T1", std::move(t1), analyze).ok());
  JOINEST_CHECK(catalog.AddTable("T2", std::move(t2), analyze).ok());
  return catalog;
}

}  // namespace

int main() {
  std::printf("%8s %12s %12s %10s %14s\n", "theta", "true size", "estimate",
              "ratio", "histogram");
  for (double theta : {0.0, 0.5, 1.0, 1.5}) {
    for (auto histogram : {AnalyzeOptions::HistogramKind::kNone,
                           AnalyzeOptions::HistogramKind::kEquiDepth}) {
      Catalog catalog = BuildCatalog(theta, histogram);
      auto query = ParseQuery(
          catalog,
          "SELECT COUNT(*) FROM T1, T2 WHERE T1.a = T2.b AND T1.a < 250");
      JOINEST_CHECK(query.ok()) << query.status();

      auto analyzed = AnalyzedQuery::Create(
          catalog, *query, PresetOptions(AlgorithmPreset::kELS));
      JOINEST_CHECK(analyzed.ok()) << analyzed.status();
      const double estimate = analyzed->EstimateFullJoin();

      auto truth = TrueResultSize(catalog, *query);
      JOINEST_CHECK(truth.ok()) << truth.status();
      const double ratio =
          *truth == 0 ? 0.0 : estimate / static_cast<double>(*truth);
      std::printf("%8.1f %12lld %12.0f %10.3f %14s\n", theta,
                  static_cast<long long>(*truth), estimate, ratio,
                  histogram == AnalyzeOptions::HistogramKind::kNone
                      ? "none"
                      : "equi-depth");
    }
  }
  std::printf("\nratio ~ 1 means accurate; the uniformity assumption "
              "degrades as theta grows.\n");
  return 0;
}
