// Quickstart: build a small catalog, parse a SQL query, estimate its result
// size with Algorithm ELS, optimize it, execute the chosen plan, and compare
// the estimate with the true count.

#include <cstdio>

#include "estimator/presets.h"
#include "executor/execute.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "storage/datagen.h"
#include "storage/datasets.h"

using namespace joinest;  // NOLINT - example code

int main() {
  // 1. Create tables. BuildExample1Dataset materialises the paper's running
  //    example: R1(a, x) with 100 rows and d_x = 10, R2(y) with 1000 rows
  //    and d_y = 100, R3(z) with 1000 rows and d_z = 1000.
  Catalog catalog;
  Status status = BuildExample1Dataset(catalog, /*seed=*/7);
  JOINEST_CHECK(status.ok()) << status;

  // 2. Parse a conjunctive select-project-join query.
  auto query = ParseQuery(
      catalog, "SELECT COUNT(*) FROM R1, R2, R3 WHERE R1.x = R2.y AND "
               "R2.y = R3.z");
  JOINEST_CHECK(query.ok()) << query.status();

  // 3. Run Algorithm ELS: transitive closure, effective statistics, and
  //    Rule LS (largest selectivity per equivalence class).
  auto analyzed = AnalyzedQuery::Create(catalog, *query,
                                        PresetOptions(AlgorithmPreset::kELS));
  JOINEST_CHECK(analyzed.ok()) << analyzed.status();
  std::printf("ELS estimate of the join result size: %.0f\n",
              analyzed->EstimateFullJoin());

  // 4. Optimize (Selinger DP with ELS estimates) and execute.
  OptimizerOptions options;
  options.estimation = PresetOptions(AlgorithmPreset::kELS);
  auto plan = OptimizeQuery(catalog, *query, options);
  JOINEST_CHECK(plan.ok()) << plan.status();
  std::printf("Chosen plan:\n%s",
              PlanToString(*plan->root, catalog, *query).c_str());

  auto result = ExecutePlan(catalog, *query, *plan->root);
  JOINEST_CHECK(result.ok()) << result.status();
  std::printf("Executed in %.3f ms; COUNT(*) = %lld\n",
              result->seconds * 1e3, static_cast<long long>(result->count));

  // 5. Cross-check against the reference executor.
  auto truth = TrueResultSize(catalog, *query);
  JOINEST_CHECK(truth.ok()) << truth.status();
  std::printf("True result size: %lld\n", static_cast<long long>(*truth));
  return 0;
}
