// Interactive shell: explore catalogs, estimates, plans and execution.
// Works interactively or scripted (commands on stdin, one per line).
//
//   gen paper [scale]        materialise the §8 dataset (S, M, B, G)
//   gen example1             materialise the Example 1b dataset (R1-R3)
//   load <name> <csv> <col:type,...>   import a CSV file
//   save <name> <csv>        export a table to CSV
//   tables                   list tables with row counts
//   stats <table>            show collected statistics
//   preset <name>            set estimation algorithm: sm_noptc | sm | sss |
//                            els | rep_min | rep_max   (default els)
//   analyze <sql>            ELS preliminary-phase dump (closure, profiles)
//   estimate <sql>           estimates under ALL presets side by side
//   explain <sql>            optimize and print the chosen plan
//   run <sql>                optimize, execute, report count and time
//   truth <sql>              exact result size via the reference executor
//   help / quit

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "stats/stats_io.h"
#include "estimator/presets.h"
#include "executor/execute.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "storage/csv.h"
#include "storage/datasets.h"

using namespace joinest;  // NOLINT - example code

namespace {

struct Shell {
  Catalog catalog;
  AlgorithmPreset preset = AlgorithmPreset::kELS;

  Status GenPaper(int64_t scale) {
    PaperDatasetOptions options;
    options.scale = scale;
    return BuildPaperDataset(catalog, options);
  }

  Status Load(const std::string& name, const std::string& path,
              const std::string& schema_text) {
    std::vector<ColumnDef> columns;
    std::istringstream iss(schema_text);
    std::string item;
    while (std::getline(iss, item, ',')) {
      const size_t colon = item.find(':');
      if (colon == std::string::npos) {
        return InvalidArgument("schema items look like name:int|double|str");
      }
      const std::string col_name = item.substr(0, colon);
      const std::string type_name = item.substr(colon + 1);
      TypeKind type;
      if (type_name == "int") {
        type = TypeKind::kInt64;
      } else if (type_name == "double") {
        type = TypeKind::kDouble;
      } else if (type_name == "str") {
        type = TypeKind::kString;
      } else {
        return InvalidArgument("unknown type '" + type_name + "'");
      }
      columns.push_back({col_name, type});
    }
    JOINEST_ASSIGN_OR_RETURN(Table table,
                             ReadCsvFile(Schema(std::move(columns)), path));
    JOINEST_ASSIGN_OR_RETURN([[maybe_unused]] int id,
                             catalog.AddTable(name, std::move(table)));
    return Status::OK();
  }

  Status Save(const std::string& name, const std::string& path) {
    JOINEST_ASSIGN_OR_RETURN(int id, catalog.ResolveTable(name));
    return WriteCsvFile(catalog.table(id), path);
  }

  void Tables() {
    TablePrinter table({"table", "rows", "columns"});
    for (int t = 0; t < catalog.num_tables(); ++t) {
      table.AddRow({catalog.table_name(t),
                    FormatNumber(catalog.stats(t).row_count),
                    catalog.table(t).schema().ToString()});
    }
    table.Print(std::cout);
  }

  Status Stats(const std::string& name) {
    JOINEST_ASSIGN_OR_RETURN(int id, catalog.ResolveTable(name));
    std::cout << catalog.stats(id).ToString() << "\n";
    return Status::OK();
  }

  // Exports one table's statistics in the editable text format.
  Status StatsSave(const std::string& name, const std::string& path) {
    JOINEST_ASSIGN_OR_RETURN(int id, catalog.ResolveTable(name));
    std::ofstream out(path);
    if (!out) return InvalidArgument("cannot open '" + path + "'");
    out << SerializeTableStats(catalog.stats(id));
    return out ? Status::OK() : Internal("write failed");
  }

  // Loads (possibly hand-edited) statistics back — what-if analysis.
  Status StatsLoad(const std::string& name, const std::string& path) {
    JOINEST_ASSIGN_OR_RETURN(int id, catalog.ResolveTable(name));
    std::ifstream in(path);
    if (!in) return NotFound("cannot open '" + path + "'");
    std::stringstream buffer;
    buffer << in.rdbuf();
    JOINEST_ASSIGN_OR_RETURN(
        TableStats stats,
        ParseTableStats(buffer.str(),
                        catalog.table(id).schema().num_columns()));
    return catalog.SetStats(id, std::move(stats));
  }

  Status SetPreset(const std::string& name) {
    if (name == "sm_noptc") {
      preset = AlgorithmPreset::kSMNoPtc;
    } else if (name == "sm") {
      preset = AlgorithmPreset::kSM;
    } else if (name == "sss") {
      preset = AlgorithmPreset::kSSS;
    } else if (name == "els") {
      preset = AlgorithmPreset::kELS;
    } else if (name == "rep_min") {
      preset = AlgorithmPreset::kRepresentativeSmall;
    } else if (name == "rep_max") {
      preset = AlgorithmPreset::kRepresentativeLarge;
    } else {
      return InvalidArgument("unknown preset '" + name + "'");
    }
    std::cout << "estimation preset: " << PresetName(preset) << "\n";
    return Status::OK();
  }

  Status Analyze(const std::string& sql) {
    JOINEST_ASSIGN_OR_RETURN(QuerySpec spec, ParseQuery(catalog, sql));
    JOINEST_ASSIGN_OR_RETURN(
        AnalyzedQuery analyzed,
        AnalyzedQuery::Create(catalog, spec, PresetOptions(preset)));
    std::cout << analyzed.DebugString();
    std::vector<int> order(spec.num_tables());
    for (int t = 0; t < spec.num_tables(); ++t) order[t] = t;
    if (spec.num_tables() > 1) {
      std::cout << "estimation trace (table order):\n"
                << analyzed.FormatTrace(analyzed.TraceOrder(order));
    }
    std::cout << "full-join estimate: "
              << FormatNumber(analyzed.EstimateFullJoin()) << "\n";
    if (!spec.group_by.empty()) {
      std::cout << "estimated groups: "
                << FormatNumber(analyzed.EstimateGroupCount()) << "\n";
    }
    return Status::OK();
  }

  Status Estimate(const std::string& sql) {
    JOINEST_ASSIGN_OR_RETURN(QuerySpec spec, ParseQuery(catalog, sql));
    TablePrinter table({"preset", "estimate (table order)"});
    for (AlgorithmPreset p : AllPresets()) {
      JOINEST_ASSIGN_OR_RETURN(
          AnalyzedQuery analyzed,
          AnalyzedQuery::Create(catalog, spec, PresetOptions(p)));
      table.AddRow({PresetName(p),
                    FormatNumber(analyzed.EstimateFullJoin())});
    }
    table.Print(std::cout);
    return Status::OK();
  }

  Status Explain(const std::string& sql) {
    JOINEST_ASSIGN_OR_RETURN(QuerySpec spec, ParseQuery(catalog, sql));
    OptimizerOptions options;
    options.estimation = PresetOptions(preset);
    JOINEST_ASSIGN_OR_RETURN(OptimizedPlan plan,
                             OptimizeQuery(catalog, spec, options));
    std::cout << "estimation: " << PresetName(preset)
              << ", estimated cost " << FormatNumber(plan.estimated_cost)
              << "\n"
              << PlanToString(*plan.root, catalog, spec);
    return Status::OK();
  }

  Status Run(const std::string& sql) {
    JOINEST_ASSIGN_OR_RETURN(QuerySpec spec, ParseQuery(catalog, sql));
    OptimizerOptions options;
    options.estimation = PresetOptions(preset);
    JOINEST_ASSIGN_OR_RETURN(OptimizedPlan plan,
                             OptimizeQuery(catalog, spec, options));
    JOINEST_ASSIGN_OR_RETURN(ExecutionResult result,
                             ExecutePlan(catalog, spec, *plan.root));
    if (spec.count_star && !spec.group_by.empty()) {
      std::cout << result.output_rows << " groups, total COUNT(*) = "
                << result.count;
    } else if (spec.count_star) {
      std::cout << "COUNT(*) = " << result.count;
    } else {
      std::cout << result.output_rows << " rows";
    }
    std::cout << " in " << FormatNumber(result.seconds * 1e3, 3) << " ms ("
              << PresetName(preset) << " plan)\n";
    return Status::OK();
  }

  // EXPLAIN ANALYZE: run and report per-operator produced-row counts,
  // inclusive wall-clock (an operator's time contains its children's) and
  // self time (inclusive minus children — where the time is actually spent).
  Status RunAnalyze(const std::string& sql) {
    JOINEST_ASSIGN_OR_RETURN(QuerySpec spec, ParseQuery(catalog, sql));
    OptimizerOptions options;
    options.estimation = PresetOptions(preset);
    JOINEST_ASSIGN_OR_RETURN(OptimizedPlan plan,
                             OptimizeQuery(catalog, spec, options));
    std::cout << PlanToString(*plan.root, catalog, spec);
    JOINEST_ASSIGN_OR_RETURN(ExecutionResult result,
                             ExecutePlan(catalog, spec, *plan.root));
    TablePrinter table({"operator", "rows produced", "incl ms", "self ms"});
    for (const OperatorStats& op : result.operators) {
      table.AddRow({op.name, FormatNumber(static_cast<double>(op.rows)),
                    FormatNumber(op.seconds * 1e3, 3),
                    FormatNumber(op.self_seconds * 1e3, 3)});
    }
    table.Print(std::cout);
    std::cout << "total " << FormatNumber(result.seconds * 1e3, 3)
              << " ms, COUNT/rows = " << result.count << "\n";
    return Status::OK();
  }

  Status Truth(const std::string& sql) {
    JOINEST_ASSIGN_OR_RETURN(QuerySpec spec, ParseQuery(catalog, sql));
    JOINEST_ASSIGN_OR_RETURN(int64_t size, TrueResultSize(catalog, spec));
    std::cout << "true result size: " << size << "\n";
    return Status::OK();
  }
};

void PrintHelp() {
  std::cout <<
      "commands:\n"
      "  gen paper [scale] | gen example1\n"
      "  load <name> <csv-path> <col:type,...>   (types: int, double, str)\n"
      "  save <name> <csv-path>\n"
      "  tables | stats <table> | preset <sm_noptc|sm|sss|els|rep_min|"
      "rep_max>\n"
      "  stats_save <table> <path> | stats_load <table> <path>   (what-if)\n"
      "  analyze <sql> | estimate <sql> | explain <sql> | run <sql> |\n"
      "  runx <sql> (explain analyze) | truth <sql>\n"
      "  help | quit\n";
}

Status Dispatch(Shell& shell, const std::string& line) {
  std::istringstream iss(line);
  std::string command;
  iss >> command;
  if (command == "gen") {
    std::string what;
    iss >> what;
    if (what == "paper") {
      int64_t scale = 1;
      iss >> scale;
      return shell.GenPaper(std::max<int64_t>(scale, 1));
    }
    if (what == "example1") return BuildExample1Dataset(shell.catalog);
    return InvalidArgument("gen paper [scale] | gen example1");
  }
  if (command == "load") {
    std::string name, path, schema;
    iss >> name >> path >> schema;
    if (schema.empty()) return InvalidArgument("load <name> <csv> <schema>");
    return shell.Load(name, path, schema);
  }
  if (command == "save") {
    std::string name, path;
    iss >> name >> path;
    if (path.empty()) return InvalidArgument("save <name> <csv>");
    return shell.Save(name, path);
  }
  if (command == "tables") {
    shell.Tables();
    return Status::OK();
  }
  if (command == "stats") {
    std::string name;
    iss >> name;
    return shell.Stats(name);
  }
  if (command == "stats_save" || command == "stats_load") {
    std::string name, path;
    iss >> name >> path;
    if (path.empty()) {
      return InvalidArgument(command + " <table> <path>");
    }
    return command == "stats_save" ? shell.StatsSave(name, path)
                                   : shell.StatsLoad(name, path);
  }
  if (command == "preset") {
    std::string name;
    iss >> name;
    return shell.SetPreset(name);
  }
  std::string rest;
  std::getline(iss, rest);
  if (command == "analyze") return shell.Analyze(rest);
  if (command == "estimate") return shell.Estimate(rest);
  if (command == "explain") return shell.Explain(rest);
  if (command == "run") return shell.Run(rest);
  if (command == "runx") return shell.RunAnalyze(rest);
  if (command == "truth") return shell.Truth(rest);
  if (command == "help") {
    PrintHelp();
    return Status::OK();
  }
  return InvalidArgument("unknown command '" + command + "' (try: help)");
}

}  // namespace

int main() {
  Shell shell;
  std::cout << "joinest shell — type 'help' for commands\n";
  std::string line;
  while (true) {
    std::cout << "joinest> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "quit" || line == "exit") break;
    const Status status = Dispatch(shell, line);
    if (!status.ok()) std::cout << status << "\n";
  }
  return 0;
}
