// Interactive shell: explore catalogs, estimates, plans and execution.
// Works interactively or scripted (commands on stdin, one per line).
//
// Built on the joinest service facade (include/joinest/joinest.h): the
// shell owns a Database, every mutation (gen/load/stats_load/reanalyze)
// publishes a new catalog snapshot, and every query command runs through
// a Session so repeated estimates and plans come from the service cache.
//
//   gen paper [scale]        materialise the §8 dataset (S, M, B, G)
//   gen example1             materialise the Example 1b dataset (R1-R3)
//   load <name> <csv> <col:type,...>   import a CSV file
//   save <name> <csv>        export a table to CSV
//   tables                   list tables with row counts
//   stats <table>            show collected statistics
//   preset <name>            set estimation algorithm: sm_noptc | sm | sss |
//                            els | rep_min | rep_max   (default els)
//   analyze <sql>            ELS preliminary-phase dump (closure, profiles)
//   estimate <sql>           estimates under ALL presets side by side
//   explain <sql>            optimize and print the chosen plan
//   run <sql>                optimize, execute, report count and time
//   pt <on|off>              toggle predicate transfer (Bloom semi-join
//                            reduction + runtime selectivity feedback)
//   feedback <on|off|stats>  toggle/inspect cardinality feedback (executed
//                            queries seed later estimates)
//   truth <sql>              exact result size via the reference executor
//   snapshot                 show the published catalog snapshot
//   reanalyze                re-collect statistics (publishes a snapshot)
//   cache                    service cache statistics
//   help / quit

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "joinest/joinest.h"
#include "stats/stats_io.h"
#include "storage/csv.h"

using namespace joinest;  // NOLINT - example code

namespace {

struct Shell {
  // The shell keeps the flight recorder on at sample rate 1: every query
  // command leaves a QueryRecord behind for `querylog` / `accuracy`.
  Database db{Database::Options().set_recorder(
      FlightRecorder::Options().set_enabled(true))};
  AlgorithmPreset preset = AlgorithmPreset::kELS;
  // Predicate transfer (pt on|off): Bloom-filter semi-join reduction before
  // execution, with observed pass rates feeding later estimates.
  bool predicate_transfer = false;
  // Cardinality feedback (feedback on|off): executed queries record their
  // actual sub-plan sizes, and later estimates serve a matching observation
  // before falling back to statistics.
  bool feedback = false;

  // Per-command session under the current preset: sessions are cheap
  // views, and recreating one picks up preset/feature changes immediately.
  // Extensions are configured through the EstimatorFeatures front door:
  // start from the preset's paper knobs and toggle what the shell enables.
  Session MakeSession() const {
    Session::Options options;
    options.set_preset(preset);
    EstimatorFeatures features = options.features();
    features.runtime_selectivities = predicate_transfer;
    features.feedback = feedback;
    options.set_features(features);
    return db.CreateSession(options).value();
  }

  const Catalog& catalog() const { return db.snapshot()->catalog(); }

  Status GenPaper(int64_t scale) {
    PaperDatasetOptions options;
    options.scale = scale;
    Catalog staged;
    JOINEST_RETURN_IF_ERROR(BuildPaperDataset(staged, options));
    return db.ImportTables(std::move(staged));
  }

  Status GenExample1() {
    Catalog staged;
    JOINEST_RETURN_IF_ERROR(BuildExample1Dataset(staged));
    return db.ImportTables(std::move(staged));
  }

  Status Load(const std::string& name, const std::string& path,
              const std::string& schema_text) {
    std::vector<ColumnDef> columns;
    std::istringstream iss(schema_text);
    std::string item;
    while (std::getline(iss, item, ',')) {
      const size_t colon = item.find(':');
      if (colon == std::string::npos) {
        return InvalidArgument("schema items look like name:int|double|str");
      }
      const std::string col_name = item.substr(0, colon);
      const std::string type_name = item.substr(colon + 1);
      TypeKind type;
      if (type_name == "int") {
        type = TypeKind::kInt64;
      } else if (type_name == "double") {
        type = TypeKind::kDouble;
      } else if (type_name == "str") {
        type = TypeKind::kString;
      } else {
        return InvalidArgument("unknown type '" + type_name + "'");
      }
      columns.push_back({col_name, type});
    }
    JOINEST_ASSIGN_OR_RETURN(Table table,
                             ReadCsvFile(Schema(std::move(columns)), path));
    return db.LoadTable(name, std::move(table));
  }

  Status Save(const std::string& name, const std::string& path) {
    JOINEST_ASSIGN_OR_RETURN(int id, catalog().ResolveTable(name));
    return WriteCsvFile(catalog().table(id), path);
  }

  void Tables() {
    const std::shared_ptr<const CatalogSnapshot> snap = db.snapshot();
    TablePrinter table({"table", "rows", "columns"});
    for (int t = 0; t < snap->catalog().num_tables(); ++t) {
      table.AddRow({snap->catalog().table_name(t),
                    FormatNumber(snap->catalog().stats(t).row_count),
                    snap->catalog().table(t).schema().ToString()});
    }
    table.Print(std::cout);
  }

  Status Stats(const std::string& name) {
    JOINEST_ASSIGN_OR_RETURN(int id, catalog().ResolveTable(name));
    std::cout << catalog().stats(id).ToString() << "\n";
    return Status::OK();
  }

  // Exports one table's statistics in the editable text format.
  Status StatsSave(const std::string& name, const std::string& path) {
    JOINEST_ASSIGN_OR_RETURN(int id, catalog().ResolveTable(name));
    std::ofstream out(path);
    if (!out) return InvalidArgument("cannot open '" + path + "'");
    out << SerializeTableStats(catalog().stats(id));
    return out ? Status::OK() : Internal("write failed");
  }

  // Loads (possibly hand-edited) statistics back — what-if analysis. The
  // service publishes a fresh snapshot, so cached estimates from the old
  // statistics can never be served again.
  Status StatsLoad(const std::string& name, const std::string& path) {
    JOINEST_ASSIGN_OR_RETURN(int id, catalog().ResolveTable(name));
    std::ifstream in(path);
    if (!in) return NotFound("cannot open '" + path + "'");
    std::stringstream buffer;
    buffer << in.rdbuf();
    JOINEST_ASSIGN_OR_RETURN(
        TableStats stats,
        ParseTableStats(buffer.str(),
                        catalog().table(id).schema().num_columns()));
    return db.SetTableStats(name, std::move(stats));
  }

  Status SetPreset(const std::string& name) {
    if (name == "sm_noptc") {
      preset = AlgorithmPreset::kSMNoPtc;
    } else if (name == "sm") {
      preset = AlgorithmPreset::kSM;
    } else if (name == "sss") {
      preset = AlgorithmPreset::kSSS;
    } else if (name == "els") {
      preset = AlgorithmPreset::kELS;
    } else if (name == "rep_min") {
      preset = AlgorithmPreset::kRepresentativeSmall;
    } else if (name == "rep_max") {
      preset = AlgorithmPreset::kRepresentativeLarge;
    } else {
      return InvalidArgument("unknown preset '" + name + "'");
    }
    std::cout << "estimation preset: " << PresetName(preset) << "\n";
    return Status::OK();
  }

  Status Analyze(const std::string& sql) {
    const Session session = MakeSession();
    JOINEST_ASSIGN_OR_RETURN(PreparedQuery prepared, session.Prepare(sql));
    JOINEST_ASSIGN_OR_RETURN(EstimateResult estimate,
                             session.Estimate(prepared));
    const AnalyzedQuery& analyzed = estimate.analysis();
    std::cout << analyzed.DebugString();
    std::vector<int> order(prepared.spec.num_tables());
    for (int t = 0; t < prepared.spec.num_tables(); ++t) order[t] = t;
    if (prepared.spec.num_tables() > 1) {
      std::cout << "estimation trace (table order):\n"
                << analyzed.FormatTrace(analyzed.TraceOrder(order));
    }
    std::cout << "full-join estimate: " << FormatNumber(estimate.rows())
              << "\n";
    if (!prepared.spec.group_by.empty()) {
      std::cout << "estimated groups: " << FormatNumber(estimate.groups())
                << "\n";
    }
    return Status::OK();
  }

  Status Estimate(const std::string& sql) {
    const Session session = MakeSession();
    JOINEST_ASSIGN_OR_RETURN(PreparedQuery prepared, session.Prepare(sql));
    TablePrinter table({"preset", "estimate (table order)"});
    for (AlgorithmPreset p : AllPresets()) {
      // The prepared query is pinned to one snapshot, so every preset
      // estimates against the same statistics.
      JOINEST_ASSIGN_OR_RETURN(
          Session variant,
          db.CreateSession(Session::Options().set_preset(p)));
      JOINEST_ASSIGN_OR_RETURN(EstimateResult estimate,
                               variant.Estimate(prepared));
      table.AddRow({PresetName(p), FormatNumber(estimate.rows())});
    }
    table.Print(std::cout);
    return Status::OK();
  }

  Status Explain(const std::string& sql) {
    const Session session = MakeSession();
    JOINEST_ASSIGN_OR_RETURN(PlannedQuery plan, session.Optimize(sql));
    std::cout << "estimation: " << PresetName(preset)
              << ", estimated cost " << FormatNumber(plan.estimated_cost())
              << "\n"
              << plan.ToString();
    return Status::OK();
  }

  Status SetPredicateTransfer(const std::string& arg) {
    if (arg == "on") {
      predicate_transfer = true;
    } else if (arg == "off") {
      predicate_transfer = false;
    } else {
      return InvalidArgument("pt on|off");
    }
    std::cout << "predicate transfer: " << (predicate_transfer ? "on" : "off")
              << "\n";
    return Status::OK();
  }

  Status SetFeedback(const std::string& arg) {
    if (arg == "on") {
      feedback = true;
    } else if (arg == "off") {
      feedback = false;
    } else {
      return InvalidArgument("feedback on|off");
    }
    std::cout << "cardinality feedback: " << (feedback ? "on" : "off") << "\n";
    return Status::OK();
  }

  // Feedback store contents summary: size, hit/miss traffic, epoch.
  void FeedbackStats() {
    const FeedbackStore& store = db.feedback_store();
    std::cout << "feedback store: " << store.size() << "/"
              << db.options().feedback_capacity() << " observation(s), "
              << store.hits() << " hit(s), " << store.misses()
              << " miss(es), epoch " << store.epoch()
              << (feedback ? "" : "  [feedback off: estimates ignore it]")
              << "\n";
  }

  void PrintPtSummary(const PtResult& pt) {
    TablePrinter table(
        {"pass", "table.column", "probed", "passed", "pass rate"});
    for (const PtFilterStats& f : pt.filters) {
      table.AddRow({f.forward ? "fwd" : "bwd",
                    f.table_name + "." + f.column_name,
                    FormatNumber(static_cast<double>(f.probed)),
                    FormatNumber(static_cast<double>(f.passed)),
                    FormatNumber(f.pass_rate * 100.0, 1) + "%"});
    }
    table.Print(std::cout);
    std::cout << "predicate transfer pruned "
              << FormatNumber(static_cast<double>(pt.rows_pruned()))
              << " scan rows in " << FormatNumber(pt.seconds * 1e3, 3)
              << " ms\n";
  }

  Status Run(const std::string& sql) {
    const Session session = MakeSession();
    JOINEST_ASSIGN_OR_RETURN(PreparedQuery prepared, session.Prepare(sql));
    JOINEST_ASSIGN_OR_RETURN(ExecuteResult result,
                             session.Execute(prepared));
    if (result.predicate_transfer != nullptr) {
      PrintPtSummary(*result.predicate_transfer);
    }
    const ExecutionResult& exec = result.execution;
    if (prepared.spec.count_star && !prepared.spec.group_by.empty()) {
      std::cout << exec.output_rows << " groups, total COUNT(*) = "
                << exec.count;
    } else if (prepared.spec.count_star) {
      std::cout << "COUNT(*) = " << exec.count;
    } else {
      std::cout << exec.output_rows << " rows";
    }
    std::cout << " in " << FormatNumber(exec.seconds * 1e3, 3) << " ms ("
              << PresetName(preset) << " plan)\n";
    return Status::OK();
  }

  // EXPLAIN ANALYZE: run and report per-operator produced-row counts,
  // inclusive wall-clock (an operator's time contains its children's) and
  // self time (inclusive minus children — where the time is actually spent).
  Status RunAnalyze(const std::string& sql) {
    const Session session = MakeSession();
    JOINEST_ASSIGN_OR_RETURN(ExecuteResult result, session.Execute(sql));
    std::cout << result.plan.ToString();
    if (result.predicate_transfer != nullptr) {
      PrintPtSummary(*result.predicate_transfer);
    }
    TablePrinter table({"operator", "rows produced", "incl ms", "self ms"});
    for (const OperatorStats& op : result.execution.operators) {
      table.AddRow({op.name, FormatNumber(static_cast<double>(op.rows)),
                    FormatNumber(op.seconds * 1e3, 3),
                    FormatNumber(op.self_seconds * 1e3, 3)});
    }
    table.Print(std::cout);
    std::cout << "total " << FormatNumber(result.execution.seconds * 1e3, 3)
              << " ms, COUNT/rows = " << result.execution.count << "\n";
    return Status::OK();
  }

  Status Truth(const std::string& sql) {
    const Session session = MakeSession();
    JOINEST_ASSIGN_OR_RETURN(PreparedQuery prepared, session.Prepare(sql));
    JOINEST_ASSIGN_OR_RETURN(
        int64_t size,
        TrueResultSize(prepared.snapshot->catalog(), prepared.spec));
    std::cout << "true result size: " << size << "\n";
    return Status::OK();
  }

  void Snapshot() { std::cout << db.snapshot()->DebugString() << "\n"; }

  Status Reanalyze() { return db.Analyze(); }

  void CacheStats() {
    const ServiceCacheStats stats = db.cache_stats();
    std::cout << "cache: " << stats.size << "/" << db.options().cache_capacity()
              << " entries, " << stats.hits << " hit(s), " << stats.misses
              << " miss(es), " << stats.evictions << " evicted, "
              << stats.invalidated << " invalidated (hit rate "
              << FormatNumber(stats.hit_rate() * 100, 1) << "%)\n";
  }

  // Last n flight-recorder records (all when n == 0), newest last.
  void QueryLog(size_t last_n) {
    const std::vector<QueryRecord> records = db.QueryLog(last_n);
    if (records.empty()) {
      std::cout << "querylog: no records captured yet\n";
      return;
    }
    TablePrinter table({"seq", "api", "snap", "hit", "rule", "estimate",
                       "actual", "q-error", "total ms"});
    for (const QueryRecord& r : records) {
      table.AddRow({std::to_string(r.seq), QueryRecordApiName(r.api),
                    std::to_string(r.snapshot_version), r.cache_hit ? "y" : "n",
                    r.rule, FormatNumber(r.estimated_rows),
                    r.actual_rows < 0 ? "-" : FormatNumber(r.actual_rows),
                    r.q_error > 0 ? FormatNumber(r.q_error, 2) : "-",
                    FormatNumber(r.total_seconds * 1e3, 3)});
    }
    table.Print(std::cout);
    std::cout << records.size() << " record(s) shown, "
              << db.recorder().total_captured() << " captured of "
              << db.recorder().total_offered() << " offered\n";
  }

  // Dumps the querylog as NDJSON (the tools/check_querylog.py format).
  Status QueryLogSave(const std::string& path) {
    std::ofstream out(path);
    if (!out) return InvalidArgument("cannot open '" + path + "'");
    out << db.QueryLogNdjson();
    if (!out) return Internal("write failed");
    std::cout << "querylog written to " << path << "\n";
    return Status::OK();
  }

  // Accuracy monitor report: per-(rule, level, snapshot) q-error windows.
  void Accuracy() {
    const std::vector<AccuracyMonitor::WindowStats> report =
        db.accuracy_monitor().Report();
    if (report.empty()) {
      std::cout << "accuracy: no executed records ingested yet "
                   "(run/runx queries first)\n";
      return;
    }
    TablePrinter table({"rule", "level", "snap", "n", "geomean q", "p50",
                       "p95", "max", "vs base", "drift"});
    for (const AccuracyMonitor::WindowStats& w : report) {
      table.AddRow({w.rule, w.level == 0 ? "query" : std::to_string(w.level),
                    std::to_string(w.snapshot_version),
                    std::to_string(w.count), FormatNumber(w.geomean, 2),
                    FormatNumber(w.p50, 2), FormatNumber(w.p95, 2),
                    FormatNumber(w.max, 2),
                    w.is_baseline ? "base"
                                  : (w.drift_ratio > 0
                                         ? FormatNumber(w.drift_ratio, 2) + "x"
                                         : "-"),
                    w.drifted ? "DRIFT" : ""});
    }
    table.Print(std::cout);
    std::cout << db.accuracy_monitor().alerts_total() << " drift alert(s)\n";
  }
};

void PrintHelp() {
  std::cout <<
      "commands:\n"
      "  gen paper [scale] | gen example1\n"
      "  load <name> <csv-path> <col:type,...>   (types: int, double, str)\n"
      "  save <name> <csv-path>\n"
      "  tables | stats <table> | preset <sm_noptc|sm|sss|els|rep_min|"
      "rep_max>\n"
      "  stats_save <table> <path> | stats_load <table> <path>   (what-if)\n"
      "  analyze <sql> | estimate <sql> | explain <sql> | run <sql> |\n"
      "  runx <sql> (explain analyze) | truth <sql>\n"
      "  pt <on|off>   (predicate transfer: Bloom semi-join reduction +\n"
      "                 runtime selectivities for later estimates)\n"
      "  feedback <on|off>      cardinality feedback: run/runx record actual\n"
      "                         sub-plan sizes; later estimates serve them\n"
      "  feedback [stats]       feedback store size / hits / epoch\n"
      "  snapshot | reanalyze | cache\n"
      "  querylog [n]           last n flight-recorder records (all: n=0)\n"
      "  querylog_save <path>   dump the querylog as NDJSON\n"
      "  accuracy               rolling q-error windows + drift status\n"
      "  help | quit\n";
}

Status Dispatch(Shell& shell, const std::string& line) {
  std::istringstream iss(line);
  std::string command;
  iss >> command;
  if (command == "gen") {
    std::string what;
    iss >> what;
    if (what == "paper") {
      int64_t scale = 1;
      iss >> scale;
      return shell.GenPaper(std::max<int64_t>(scale, 1));
    }
    if (what == "example1") return shell.GenExample1();
    return InvalidArgument("gen paper [scale] | gen example1");
  }
  if (command == "load") {
    std::string name, path, schema;
    iss >> name >> path >> schema;
    if (schema.empty()) return InvalidArgument("load <name> <csv> <schema>");
    return shell.Load(name, path, schema);
  }
  if (command == "save") {
    std::string name, path;
    iss >> name >> path;
    if (path.empty()) return InvalidArgument("save <name> <csv>");
    return shell.Save(name, path);
  }
  if (command == "tables") {
    shell.Tables();
    return Status::OK();
  }
  if (command == "stats") {
    std::string name;
    iss >> name;
    return shell.Stats(name);
  }
  if (command == "stats_save" || command == "stats_load") {
    std::string name, path;
    iss >> name >> path;
    if (path.empty()) {
      return InvalidArgument(command + " <table> <path>");
    }
    return command == "stats_save" ? shell.StatsSave(name, path)
                                   : shell.StatsLoad(name, path);
  }
  if (command == "preset") {
    std::string name;
    iss >> name;
    return shell.SetPreset(name);
  }
  if (command == "pt") {
    std::string arg;
    iss >> arg;
    return shell.SetPredicateTransfer(arg);
  }
  if (command == "feedback") {
    std::string arg;
    iss >> arg;
    if (arg.empty() || arg == "stats") {
      shell.FeedbackStats();
      return Status::OK();
    }
    return shell.SetFeedback(arg);
  }
  if (command == "snapshot") {
    shell.Snapshot();
    return Status::OK();
  }
  if (command == "reanalyze") return shell.Reanalyze();
  if (command == "cache") {
    shell.CacheStats();
    return Status::OK();
  }
  if (command == "querylog") {
    size_t last_n = 0;
    iss >> last_n;
    shell.QueryLog(last_n);
    return Status::OK();
  }
  if (command == "querylog_save") {
    std::string path;
    iss >> path;
    if (path.empty()) return InvalidArgument("querylog_save <path>");
    return shell.QueryLogSave(path);
  }
  if (command == "accuracy") {
    shell.Accuracy();
    return Status::OK();
  }
  std::string rest;
  std::getline(iss, rest);
  if (command == "analyze") return shell.Analyze(rest);
  if (command == "estimate") return shell.Estimate(rest);
  if (command == "explain") return shell.Explain(rest);
  if (command == "run") return shell.Run(rest);
  if (command == "runx") return shell.RunAnalyze(rest);
  if (command == "truth") return shell.Truth(rest);
  if (command == "help") {
    PrintHelp();
    return Status::OK();
  }
  return InvalidArgument("unknown command '" + command + "' (try: help)");
}

}  // namespace

int main() {
  Shell shell;
  std::cout << "joinest shell — type 'help' for commands\n";
  std::string line;
  while (true) {
    std::cout << "joinest> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "quit" || line == "exit") break;
    const Status status = Dispatch(shell, line);
    if (!status.ok()) std::cout << status << "\n";
  }
  return 0;
}
