// Star-schema (warehouse) demo: a fact table joined to several dimension
// tables on distinct foreign keys — the bread-and-butter multi-join query
// whose optimization the paper's introduction motivates.
//
//   sales(customer_fk, product_fk, store_fk, amount)
//   customers(customer_pk, region)
//   products(product_pk, category)
//   stores(store_pk)
//
//   SELECT COUNT(*) FROM sales, customers, products, stores
//   WHERE sales.customer_fk = customers.customer_pk
//     AND sales.product_fk = products.product_pk
//     AND sales.store_fk = stores.store_pk
//     AND customers.region = <r> AND products.category = <c>
//
// Each foreign key forms its own equivalence class (multi-class
// estimation); the dimension filters propagate into the fact table via the
// optimizer's cost decisions rather than transitive closure (no equality
// chains between the FK columns). The demo prints estimates vs the exact
// result and the chosen plans under SM and ELS.

#include <cstdio>

#include "common/random.h"
#include "estimator/presets.h"
#include "executor/execute.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "storage/datagen.h"

using namespace joinest;  // NOLINT - example code

namespace {

Catalog BuildWarehouse(uint64_t seed) {
  Rng rng(seed);
  Catalog catalog;
  const int64_t num_customers = 2000;
  const int64_t num_products = 500;
  const int64_t num_stores = 50;
  const int64_t num_sales = 50000;

  {
    Table customers = Table::FromColumns(
        Schema({{"customer_pk", TypeKind::kInt64},
                {"region", TypeKind::kInt64}}),
        {ToValueColumn(MakeKeyColumn(num_customers, rng)),
         ToValueColumn(MakeUniformColumn(num_customers, 10, rng))});
    JOINEST_CHECK(catalog.AddTable("customers", std::move(customers)).ok());
  }
  {
    Table products = Table::FromColumns(
        Schema({{"product_pk", TypeKind::kInt64},
                {"category", TypeKind::kInt64}}),
        {ToValueColumn(MakeKeyColumn(num_products, rng)),
         ToValueColumn(MakeUniformColumn(num_products, 20, rng))});
    JOINEST_CHECK(catalog.AddTable("products", std::move(products)).ok());
  }
  {
    Table stores = Table::FromColumns(
        Schema({{"store_pk", TypeKind::kInt64}}),
        {ToValueColumn(MakeKeyColumn(num_stores, rng))});
    JOINEST_CHECK(catalog.AddTable("stores", std::move(stores)).ok());
  }
  {
    // Sales reference customers with Zipf popularity (loyal customers buy
    // more), products and stores uniformly.
    Table sales = Table::FromColumns(
        Schema({{"customer_fk", TypeKind::kInt64},
                {"product_fk", TypeKind::kInt64},
                {"store_fk", TypeKind::kInt64},
                {"amount", TypeKind::kInt64}}),
        {ToValueColumn(MakeZipfColumn(num_sales, num_customers, 0.5, rng)),
         ToValueColumn(MakeUniformColumn(num_sales, num_products, rng)),
         ToValueColumn(MakeUniformColumn(num_sales, num_stores, rng)),
         ToValueColumn(MakeUniformColumn(num_sales, 100, rng,
                                         /*ensure_cover=*/false))});
    JOINEST_CHECK(catalog.AddTable("sales", std::move(sales)).ok());
  }
  return catalog;
}

}  // namespace

int main() {
  Catalog catalog = BuildWarehouse(2026);
  const char* sql =
      "SELECT COUNT(*) FROM sales, customers, products, stores "
      "WHERE sales.customer_fk = customers.customer_pk "
      "AND sales.product_fk = products.product_pk "
      "AND sales.store_fk = stores.store_pk "
      "AND customers.region = 3 AND products.category = 7";
  auto query = ParseQuery(catalog, sql);
  JOINEST_CHECK(query.ok()) << query.status();
  std::printf("Query: %s\n\n", sql);

  auto truth = TrueResultSize(catalog, *query);
  JOINEST_CHECK(truth.ok()) << truth.status();
  std::printf("true result size: %lld\n",
              static_cast<long long>(*truth));

  for (AlgorithmPreset preset :
       {AlgorithmPreset::kSM, AlgorithmPreset::kELS}) {
    auto analyzed =
        AnalyzedQuery::Create(catalog, *query, PresetOptions(preset));
    JOINEST_CHECK(analyzed.ok()) << analyzed.status();
    std::printf("%s estimate: %.0f\n", PresetName(preset),
                analyzed->EstimateFullJoin());
  }
  std::printf(
      "\n(On this multi-class query the two coincide: each foreign key is\n"
      "its own equivalence class, so Rule M never multiplies redundant\n"
      "selectivities. The rules diverge when transitive closure creates\n"
      "equality chains — see paper_walkthrough and optimizer_demo.)\n\n");

  OptimizerOptions options;
  options.estimation = PresetOptions(AlgorithmPreset::kELS);
  options.allow_bushy = true;
  auto plan = OptimizeQuery(catalog, *query, options);
  JOINEST_CHECK(plan.ok()) << plan.status();
  std::printf("Chosen plan (ELS, bushy enabled):\n%s",
              PlanToString(*plan->root, catalog, *query).c_str());
  auto result = ExecutePlan(catalog, *query, *plan->root);
  JOINEST_CHECK(result.ok()) << result.status();
  std::printf("COUNT(*) = %lld in %.1f ms\n",
              static_cast<long long>(result->count), result->seconds * 1e3);
  JOINEST_CHECK_EQ(result->count, *truth);
  return 0;
}
