// Reproduces every worked numerical example in the paper, §2-§7:
//
//  * Example 1b — Equations 2 and 3 on the R1/R2/R3 statistics.
//  * Example 2  — Rule M estimating 1 where the correct answer is 1000.
//  * Example 3  — Rule SS estimating 100, Rule LS estimating 1000.
//  * §3.3      — the representative-selectivity strawman (10000 / 100).
//  * §5        — the urn-model distinct estimate (9933 vs 5000).
//  * §6        — single-table j-equivalent columns (||R2||' = 20, d' = 9).
//
// Tables are registered with exactly the paper's statistics (no data is
// needed — estimation reads only the catalog).

#include <cstdio>

#include "estimator/analyzed_query.h"
#include "estimator/presets.h"
#include "query/query_spec.h"
#include "stats/distinct.h"
#include "storage/catalog.h"

namespace {

using namespace joinest;  // NOLINT - example code

// Registers an empty table carrying hand-written statistics: estimation
// consumes only ||R|| and d, so no rows are materialised.
int AddStatsOnlyTable(Catalog& catalog, const std::string& name,
                      std::vector<ColumnDef> columns, double rows,
                      std::vector<double> distinct) {
  TableStats stats;
  stats.row_count = rows;
  for (double d : distinct) {
    ColumnStats col;
    col.distinct_count = d;
    stats.columns.push_back(col);
  }
  Table table{Schema(std::move(columns))};
  auto id = catalog.AddTableWithStats(name, std::move(table), std::move(stats));
  JOINEST_CHECK(id.ok()) << id.status();
  return *id;
}

void Example1b() {
  std::printf("=== Example 1b (Equations 2 and 3) ===\n");
  Catalog catalog;
  AddStatsOnlyTable(catalog, "R1", {{"x", TypeKind::kInt64}}, 100, {10});
  AddStatsOnlyTable(catalog, "R2", {{"y", TypeKind::kInt64}}, 1000, {100});
  AddStatsOnlyTable(catalog, "R3", {{"z", TypeKind::kInt64}}, 1000, {1000});

  QuerySpec spec;
  spec.count_star = true;
  for (const char* name : {"R1", "R2", "R3"}) {
    JOINEST_CHECK(spec.AddTable(catalog, name).ok());
  }
  // J1: R1.x = R2.y, J2: R2.y = R3.z (J3 derived by transitive closure).
  spec.predicates.push_back(
      Predicate::Join(ColumnRef{0, 0}, ColumnRef{1, 0}));
  spec.predicates.push_back(
      Predicate::Join(ColumnRef{1, 0}, ColumnRef{2, 0}));

  auto els = AnalyzedQuery::Create(catalog, spec,
                                   PresetOptions(AlgorithmPreset::kELS));
  JOINEST_CHECK(els.ok());
  // Selectivities (paper: 0.01, 0.001, 0.001).
  for (const Predicate& p : els->predicates()) {
    if (p.kind == Predicate::Kind::kJoin) {
      std::printf("  S(%s) = %g\n",
                  spec.PredicateToString(catalog, p).c_str(),
                  els->JoinSelectivity(p));
    }
  }
  // ||R2 x R3|| = 1000 and ||R1 x R2 x R3|| = 1000 for order (R2,R3),R1.
  const std::vector<double> sizes = els->EstimateOrder({1, 2, 0});
  std::printf("  LS, order (R2 x R3) then R1: %g then %g  (paper: 1000, "
              "1000)\n",
              sizes[0], sizes[1]);

  // Example 2: Rule M on the same order.
  EstimationOptions m_options = PresetOptions(AlgorithmPreset::kSM);
  auto rule_m = AnalyzedQuery::Create(catalog, spec, m_options);
  JOINEST_CHECK(rule_m.ok());
  const std::vector<double> m_sizes = rule_m->EstimateOrder({1, 2, 0});
  std::printf("  Example 2, Rule M final size: %g  (paper: 1, correct: "
              "1000)\n",
              m_sizes[1]);

  // Example 3: Rule SS.
  auto rule_ss = AnalyzedQuery::Create(catalog, spec,
                                       PresetOptions(AlgorithmPreset::kSSS));
  JOINEST_CHECK(rule_ss.ok());
  const std::vector<double> ss_sizes = rule_ss->EstimateOrder({1, 2, 0});
  std::printf("  Example 3, Rule SS final size: %g  (paper: 100, correct: "
              "1000)\n",
              ss_sizes[1]);

  // §3.3: representative selectivity, both picks.
  for (AlgorithmPreset preset : {AlgorithmPreset::kRepresentativeLarge,
                                 AlgorithmPreset::kRepresentativeSmall}) {
    auto rep = AnalyzedQuery::Create(catalog, spec, PresetOptions(preset));
    JOINEST_CHECK(rep.ok());
    std::printf("  %s final size: %g  (paper: rep=0.01 -> 10000, rep=0.001 "
                "-> 100)\n",
                PresetName(preset), rep->EstimateOrder({1, 2, 0})[1]);
  }
}

void Section5Urn() {
  std::printf("=== §5 urn-model example ===\n");
  const double urn = UrnModelDistinct(10000, 50000);
  const double linear = LinearRatioDistinct(10000, 100000, 50000);
  std::printf("  d=10000, ||R||=100000, ||R||'=50000: urn=%.0f (paper 9933), "
              "linear=%.0f (paper 5000)\n",
              urn, linear);
  std::printf("  at ||R||'=||R||: urn=%.0f (paper 10000)\n",
              UrnModelDistinct(10000, 100000));
}

void Section6SingleTable() {
  std::printf("=== §6 single-table j-equivalent columns ===\n");
  Catalog catalog;
  AddStatsOnlyTable(catalog, "R1", {{"x", TypeKind::kInt64}}, 100, {100});
  AddStatsOnlyTable(catalog, "R2",
                    {{"y", TypeKind::kInt64}, {"w", TypeKind::kInt64}}, 1000,
                    {10, 50});
  QuerySpec spec;
  spec.count_star = true;
  JOINEST_CHECK(spec.AddTable(catalog, "R1").ok());
  JOINEST_CHECK(spec.AddTable(catalog, "R2").ok());
  spec.predicates.push_back(
      Predicate::Join(ColumnRef{0, 0}, ColumnRef{1, 0}));  // x = y
  spec.predicates.push_back(
      Predicate::Join(ColumnRef{0, 0}, ColumnRef{1, 1}));  // x = w

  auto els = AnalyzedQuery::Create(catalog, spec,
                                   PresetOptions(AlgorithmPreset::kELS));
  JOINEST_CHECK(els.ok());
  const TableProfile& r2 = els->profile(1);
  std::printf("  ||R2||' = %g (paper: 20)\n", r2.effective_rows);
  std::printf("  effective column cardinality = %g (paper: 9)\n",
              r2.join_distinct[0]);
  std::printf("  derived predicates: %zu (expect y=w among them)\n",
              els->predicates().size() - spec.predicates.size());
}

}  // namespace

int main() {
  Example1b();
  Section5Urn();
  Section6SingleTable();
  return 0;
}
