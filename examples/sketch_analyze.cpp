// Sketch statistics walkthrough: collect catalog statistics with the
// streaming sketch subsystem (src/sketch/) instead of a full exact scan,
// inspect what changed, and show that Algorithm ELS estimates survive the
// approximation.
//
// The sketch path streams every column once through a HyperLogLog (distinct
// count), a Count-Min sketch + top-k tracker (heavy hitters for the
// end-biased histogram), and a reservoir sample (histogram tail, min/max) —
// fixed-size state that merges exactly across row-range partitions, so the
// scan runs on `num_partitions` threads.

#include <cstdio>

#include "estimator/presets.h"
#include "executor/execute.h"
#include "query/parser.h"
#include "storage/datagen.h"
#include "storage/datasets.h"

using namespace joinest;  // NOLINT - example code

int main() {
  // 1. The paper's running example, analyzed exactly on load.
  Catalog catalog;
  Status status = BuildExample1Dataset(catalog, /*seed=*/7);
  JOINEST_CHECK(status.ok()) << status;

  auto query = ParseQuery(
      catalog, "SELECT COUNT(*) FROM R1, R2, R3 WHERE R1.x = R2.y AND "
               "R2.y = R3.z");
  JOINEST_CHECK(query.ok()) << query.status();

  auto estimate = [&] {
    auto analyzed = AnalyzedQuery::Create(
        catalog, *query, PresetOptions(AlgorithmPreset::kELS));
    JOINEST_CHECK(analyzed.ok()) << analyzed.status();
    return analyzed->EstimateFullJoin();
  };

  std::printf("== Exact statistics ==\n");
  for (int t = 0; t < catalog.num_tables(); ++t) {
    std::printf("%s: %s\n", catalog.table_name(t).c_str(),
                catalog.stats(t).ToString().c_str());
  }
  const double exact_estimate = estimate();
  std::printf("ELS estimate: %.0f\n\n", exact_estimate);

  // 2. Re-collect every table's statistics from sketches, four partition
  //    threads per table. Distinct counts become HLL estimates and each
  //    column records its a-priori relative standard error (1.04/sqrt(2^p)).
  AnalyzeOptions analyze;
  analyze.stats_mode = AnalyzeOptions::StatsMode::kSketch;
  analyze.num_partitions = 4;
  status = catalog.ReanalyzeAll(analyze);
  JOINEST_CHECK(status.ok()) << status;

  std::printf("== Sketch statistics (4 partitions per table) ==\n");
  for (int t = 0; t < catalog.num_tables(); ++t) {
    std::printf("%s: %s\n", catalog.table_name(t).c_str(),
                catalog.stats(t).ToString().c_str());
  }
  const double sketch_estimate = estimate();
  std::printf("ELS estimate: %.0f\n\n", sketch_estimate);

  // 3. Ground truth for both.
  auto truth = TrueResultSize(catalog, *query);
  JOINEST_CHECK(truth.ok()) << truth.status();
  std::printf("True result size: %lld\n", static_cast<long long>(*truth));
  std::printf("estimate/truth: exact stats %.3f, sketch stats %.3f\n",
              exact_estimate / static_cast<double>(*truth),
              sketch_estimate / static_cast<double>(*truth));
  return 0;
}
